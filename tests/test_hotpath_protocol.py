"""Regression tests for the protocol/workload hot-path PRs.

Covers the batched multicast scheduling, the fused delivery pipeline's
per-destination FIFO guarantee, the Zipf alias table, and the
protocol-layer caches (view epochs, bundle digests) — alongside the
goldens in ``test_hotpath_and_fixes.py`` / ``tests/goldens_e0.json``,
which pin fixed-seed runs to bit-identical simulation results.
"""

from __future__ import annotations

import math

import pytest

from repro.core.types import OperationsBundle, make_transaction
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.links import AuthenticatedPerfectLink
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.sim.events import EventQueue, noop
from repro.sim.process import Process
from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator
from repro.workload.zipf import ZipfianGenerator


# ---------------------------------------------------------------------- #
# Batched scheduling: push_batch equals per-pair pushes
# ---------------------------------------------------------------------- #
class TestScheduleBatch:
    def test_pop_order_matches_individual_pushes(self):
        rng = SeededRng(5, "batch")
        times = [rng.random() * 10 for _ in range(500)]
        individual = EventQueue()
        for index, t in enumerate(times):
            individual.push(t, noop, arg=index)
        batched = EventQueue()
        # Mixed insertion: a few singles, then bulk batches of varying size.
        batched.push(times[0], noop, arg=0)
        batched.push(times[1], noop, arg=1)
        batched.push_batch([(t, i + 2) for i, t in enumerate(times[2:102])], noop)
        batched.push_batch([(t, i + 102) for i, t in enumerate(times[102:110])], noop)
        batched.push_batch([(t, i + 110) for i, t in enumerate(times[110:])], noop)
        order_a = []
        order_b = []
        while True:
            event = individual.pop()
            if event is None:
                break
            order_a.append((event.time, event.sequence, event.arg))
        while True:
            event = batched.pop()
            if event is None:
                break
            order_b.append((event.time, event.sequence, event.arg))
        assert order_a == order_b

    def test_schedule_batch_rejects_past_times(self):
        sim = Simulator()
        sim.schedule(1.0, noop)
        sim.run()
        assert sim.now == 1.0
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sim.schedule_batch([(0.5, None)], noop)

    def test_large_batch_triggers_bulk_heapify_path(self):
        queue = EventQueue()
        queue.push(100.0, noop)
        queue.push_batch([(float(i), i) for i in range(64)], noop)
        assert len(queue) == 65
        drained = [queue.pop().time for _ in range(65)]
        assert drained == sorted(drained)


# ---------------------------------------------------------------------- #
# Fused delivery pipeline: per-destination FIFO under multicast bursts
# ---------------------------------------------------------------------- #
class _Recorder(Process):
    def __init__(self, process_id, simulator):
        super().__init__(process_id, simulator)
        self.received = []

    def on_message(self, sender, envelope):
        self.received.append(envelope.payload.marker)


class _Marked(Message):
    def __init__(self, marker):
        self.marker = marker

    def estimated_size(self) -> int:
        return 256

    def verification_cost(self) -> int:
        return 3  # long enough processing to force queueing under bursts


class _SendRecordingNetwork(Network):
    """Records the per-destination send-schedule order.

    The fused pipeline's FIFO discipline is *send-schedule order* per
    destination: hand-over slots are assigned monotonically at send time, so
    with no crashes or drops every destination must receive exactly the
    messages addressed to it, in the order the sends were issued.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.send_order = {}

    def send(self, sender, destination, payload, signature=None):
        self.send_order.setdefault(destination, []).append(payload.marker)
        super().send(sender, destination, payload, signature)

    def multicast(self, sender, destinations, payload, signature=None):
        for destination in destinations:
            self.send_order.setdefault(destination, []).append(payload.marker)
        super().multicast(sender, destinations, payload, signature)


class TestPipelineFifo:
    def _build(self, seed, network_cls=Network):
        sim = Simulator(seed=seed)
        registry = KeyRegistry(seed=seed)
        network = network_cls(sim, LatencyModel(sim.rng), registry, NetworkConfig())
        senders = []
        receivers = []
        for index in range(4):
            receiver = _Recorder(f"r{index}", sim)
            network.register(receiver, region="us-west1")
            receivers.append(receiver)
        for index in range(3):
            sender = _Recorder(f"s{index}", sim)
            network.register(sender, region="us-west1")
            senders.append(sender)
        return sim, network, senders, receivers

    def test_delivery_order_equals_send_order_across_random_bursts(self):
        """Property-style check over several seeds and randomized bursts."""
        for seed in (1, 2, 3, 4, 5):
            sim, network, senders, receivers = self._build(
                seed, network_cls=_SendRecordingNetwork
            )
            links = {s.process_id: AuthenticatedPerfectLink(s.process_id, network) for s in senders}
            rng = SeededRng(seed, "bursts")
            marker = 0
            for wave in range(20):
                at = wave * 0.002
                for sender in senders:
                    if rng.random() < 0.7:
                        count = rng.randint(1, 4)
                        for _ in range(count):
                            payload = _Marked(marker)
                            marker += 1
                            targets = [r.process_id for r in receivers]
                            sim.schedule_at(
                                at,
                                lambda l=links[sender.process_id], t=targets, p=payload: l.send_many(t, p),
                            )
            sim.run()
            # No crashes or drops in this scenario, so the hand-over order at
            # every destination must equal the send-schedule order exactly.
            for receiver in receivers:
                assert receiver.received == network.send_order.get(receiver.process_id, []), (
                    f"FIFO violated at {receiver.process_id} (seed {seed})"
                )
                assert receiver.received, "scenario must actually deliver traffic"

    def test_sustained_burst_drains_completely_in_order(self):
        sim, network, senders, receivers = self._build(seed=9)
        link = AuthenticatedPerfectLink(senders[0].process_id, network)
        destination = receivers[0].process_id
        for index in range(50):
            link.send(destination, _Marked(index))
        sim.run()
        # A single sender's point-to-point stream is FIFO: jitter cannot
        # reorder hand-overs because CPU slots are assigned at send time.
        assert receivers[0].received == list(range(50))
        # The serial CPU queue is visible: hand-overs are spaced by at least
        # the per-message processing cost once the queue saturates.
        assert network.stats.messages_delivered == 50

    def test_crash_mid_queue_drops_remaining_messages(self):
        sim, network, senders, receivers = self._build(seed=10)
        link = AuthenticatedPerfectLink(senders[0].process_id, network)
        destination = receivers[0].process_id
        for index in range(10):
            link.send(destination, _Marked(index))
        # Crash the receiver shortly after the first hand-overs (~0.95 ms
        # for the first, then one every ~0.25 ms of processing).
        sim.schedule(0.002, receivers[0].crash)
        sim.run()
        delivered = len(receivers[0].received)
        assert 0 < delivered < 10
        assert receivers[0].received == list(range(delivered))
        assert network.stats.messages_dropped == 10 - delivered


# ---------------------------------------------------------------------- #
# Zipf alias table
# ---------------------------------------------------------------------- #
class TestZipfAlias:
    def test_distribution_agrees_with_cdf_probabilities(self):
        """Chi-squared agreement between alias draws and probability()."""
        items = 50
        draws = 200_000
        generator = ZipfianGenerator(items, 0.99, SeededRng(123, "zipf-chi"))
        counts = [0] * items
        for _ in range(draws):
            counts[generator.next()] += 1
        chi = 0.0
        for rank in range(items):
            expected = generator.probability(rank) * draws
            chi += (counts[rank] - expected) ** 2 / expected
        # 49 degrees of freedom: p=0.001 critical value is ~85.4.
        assert chi < 85.4, f"chi-squared {chi:.1f} too large; alias table disagrees with CDF"

    def test_probabilities_sum_to_one_and_match_alias_mass(self):
        generator = ZipfianGenerator(64, 0.99, SeededRng(7, "zipf-mass"))
        total = sum(generator.probability(rank) for rank in range(64))
        assert math.isclose(total, 1.0, rel_tol=1e-9)
        # The alias table redistributes exactly the same total mass.
        mass = [0.0] * 64
        for index in range(64):
            mass[index] += generator._prob[index] / 64
            mass[generator._alias[index]] += (1.0 - generator._prob[index]) / 64
        for rank in range(64):
            assert math.isclose(mass[rank], generator.probability(rank), abs_tol=1e-9)

    def test_same_seed_generators_draw_identically(self):
        a = ZipfianGenerator(1000, 0.99, SeededRng(42, "zipf-det"))
        b = ZipfianGenerator(1000, 0.99, SeededRng(42, "zipf-det"))
        assert [a.next() for _ in range(2000)] == [b.next() for _ in range(2000)]

    def test_one_uniform_draw_per_next(self):
        """The alias table must consume the rng stream exactly like the old
        CDF inversion did (one uniform per draw), so sibling streams — and
        therefore whole-simulation determinism — are unaffected."""
        rng = SeededRng(5, "zipf-stream")
        generator = ZipfianGenerator(100, 0.99, rng)
        reference = SeededRng(5, "zipf-stream")
        for _ in range(500):
            generator.next()
            reference.random()
        assert rng.random() == reference.random()


# ---------------------------------------------------------------------- #
# Protocol-layer caches
# ---------------------------------------------------------------------- #
class TestBundleCaches:
    def _bundle(self):
        txns = [make_transaction("c", "r0", "write", f"k{i}", value="v") for i in range(10)]
        return OperationsBundle(cluster_id=0, round_number=1, transactions=txns)

    def test_size_bytes_cached_and_stable(self):
        bundle = self._bundle()
        first = bundle.size_bytes()
        assert bundle.size_bytes() == first
        assert first == 256 + 10 * 1024

    def test_digest_cached_and_distinct_per_bundle(self):
        a = self._bundle()
        b = self._bundle()
        assert a.digest() == a.digest()
        assert a.digest() != b.digest()  # different txn ids

    def test_view_cache_invalidated_by_reconfig(self):
        from tests.helpers import small_deployment

        deployment = small_deployment()
        replica = deployment.replicas["c0/r0"]
        before = replica.members(0)
        assert replica.members(0) is before  # cached list identity
        from repro.core.types import join_request

        replica._apply_reconfig(0, join_request("joiner", 0, "us-west1"))
        after = replica.members(0)
        assert after is not before
        assert "joiner" in after
