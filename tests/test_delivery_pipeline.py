"""Tests for the fused delivery pipeline: event budget, 0 ms loop-back,
microtask ordering, and fixed-seed determinism.

These pin the *structural* wins of the pipeline refactor:

* at most one kernel event per delivered message in an end-to-end run
  (the old ``net:deliver`` → ``net:cpu`` chain cost two),
* self-addressed messages are handed over at the same virtual instant with
  no latency draw, no drop-rule evaluation, and no kernel event,
* same seed ⇒ byte-identical :class:`~repro.harness.runner.ResultRow`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.runner import run_scenario
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from tests.repin_goldens import e0_spec


@dataclass
class Note(Message):
    text: str = "hi"


class Recorder(Process):
    def __init__(self, process_id, simulator):
        super().__init__(process_id, simulator)
        self.received = []

    def on_message(self, sender, envelope):
        self.received.append((sender, envelope.payload, self.now))


def build_network(seed=3, cpu_model=True):
    simulator = Simulator(seed=seed)
    registry = KeyRegistry(seed=seed)
    network = Network(
        simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=cpu_model)
    )
    return simulator, network


# ---------------------------------------------------------------------- #
# Kernel event budget: <= 1 event per delivered message, end to end
# ---------------------------------------------------------------------- #
class TestEventBudget:
    def test_e0_run_spends_at_most_one_kernel_event_per_delivered_message(self):
        spec = e0_spec()
        deployment = spec.build()
        deployment.run(duration=spec.duration, warmup=spec.warmup)
        stats = deployment.network.stats
        delivered = stats.messages_delivered + stats.loopback_messages
        events = deployment.simulator.events_processed
        assert delivered > 10_000, "scenario must exercise real traffic"
        assert events <= delivered, (
            f"{events} kernel events for {delivered} delivered messages "
            f"({events / delivered:.2f} per message); the fused pipeline "
            "guarantees at most one"
        )

    def test_wire_message_costs_exactly_one_kernel_event(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        AuthenticatedPerfectLink("a", network).send("b", Note("one"))
        simulator.run()
        assert len(b.received) == 1
        assert simulator.events_processed == 1

    def test_loopback_costs_zero_kernel_events(self):
        simulator, network = build_network()
        a = Recorder("a", simulator)
        network.register(a, "us-west1")
        AuthenticatedPerfectLink("a", network).send("a", Note("self"))
        simulator.run()
        assert len(a.received) == 1
        assert simulator.events_processed == 0


# ---------------------------------------------------------------------- #
# 0 ms loop-back semantics
# ---------------------------------------------------------------------- #
class TestLoopback:
    def test_self_send_is_delivered_at_the_same_virtual_instant(self):
        simulator, network = build_network()
        a = Recorder("a", simulator)
        network.register(a, "us-west1")
        link = AuthenticatedPerfectLink("a", network)
        simulator.schedule(1.5, lambda: link.send("a", Note("self")))
        simulator.run()
        assert [(s, t) for s, _, t in a.received] == [("a", 1.5)]

    def test_self_send_bypasses_drop_rules(self):
        simulator, network = build_network()
        a = Recorder("a", simulator)
        network.register(a, "us-west1")
        network.isolate("a")  # would drop any wire traffic to or from a
        AuthenticatedPerfectLink("a", network).send("a", Note("self"))
        simulator.run()
        assert len(a.received) == 1
        assert network.stats.messages_dropped == 0
        assert network.stats.loopback_messages == 1

    def test_self_send_never_consumes_the_latency_stream(self):
        """Two identical runs — one with extra self-sends — must produce
        identical wire delivery times, proving loop-back draws no jitter."""

        def wire_delivery_time(with_self_sends):
            simulator, network = build_network(seed=11)
            a, b = Recorder("a", simulator), Recorder("b", simulator)
            network.register(a, "us-west1")
            network.register(b, "us-west1")
            link = AuthenticatedPerfectLink("a", network)
            if with_self_sends:
                for _ in range(5):
                    link.send("a", Note("self"))
            link.send("b", Note("wire"))
            simulator.run()
            return b.received[0][2]

        assert wire_delivery_time(False) == wire_delivery_time(True)

    def test_self_sends_are_not_counted_as_wire_traffic(self):
        simulator, network = build_network()
        nodes = [Recorder(f"n{i}", simulator) for i in range(4)]
        for node in nodes:
            network.register(node, "us-west1")
        group = tuple(sorted(n.process_id for n in nodes))
        AuthenticatedBestEffortBroadcast("n0", network, lambda: group).broadcast(Note("all"))
        simulator.run()
        assert network.stats.messages_sent == 3  # the three wire copies
        assert network.stats.loopback_messages == 1
        assert network.stats.messages_delivered == 3
        assert network.stats.by_type["Note"] == 4  # census counts every copy
        for node in nodes:
            assert len(node.received) == 1

    def test_loopback_to_a_just_crashed_sender_is_dropped(self):
        """A process that self-sends and crashes within the same event must
        not hear from itself: the microtask sees the crash."""
        simulator, network = build_network()
        a = Recorder("a", simulator)
        network.register(a, "us-west1")
        link = AuthenticatedPerfectLink("a", network)

        def send_then_crash():
            link.send("a", Note("ghost"))
            a.crash()

        simulator.schedule(0.5, send_then_crash)
        simulator.run()
        assert a.received == []
        assert network.stats.messages_dropped == 1
        assert network.stats.loopback_messages == 0

    def test_loopback_runs_before_the_next_heap_event(self):
        """Microtasks jump ahead of already-queued events at the same time."""
        simulator, network = build_network()
        a = Recorder("a", simulator)
        network.register(a, "us-west1")
        link = AuthenticatedPerfectLink("a", network)
        order = []

        def sender():
            link.send("a", Note("self"))
            order.append("sent")

        simulator.schedule(1.0, sender)
        simulator.schedule(1.0, lambda: order.append("later-event"))
        original = a.on_message

        def record(sender_id, envelope):
            order.append("delivered")
            original(sender_id, envelope)

        a.on_message = record
        simulator.run()
        assert order == ["sent", "delivered", "later-event"]


# ---------------------------------------------------------------------- #
# Link-latency aggregates exclude loop-back by construction
# ---------------------------------------------------------------------- #
class TestLinkLatencyStats:
    def test_mean_link_latency_covers_wire_messages_only(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "asia-south1")
        link = AuthenticatedPerfectLink("a", network)
        for _ in range(10):
            link.send("a", Note("self"))  # 0 ms, must not dilute the mean
        link.send("b", Note("wire"))
        simulator.run()
        stats = network.stats
        assert stats.link_latency_count == 1
        # One us-west1 -> asia-south1 hop: ~107 ms one way.
        assert stats.mean_link_latency() > 0.05


# ---------------------------------------------------------------------- #
# Fixed-seed determinism of full scenario rows
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_seed_produces_identical_result_rows(self):
        spec = e0_spec().with_seed(3)
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert first.to_json() == second.to_json()
