"""Tests for the geo latency model (paper Table II)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.net.latency import (
    LatencyModel,
    LatencyParameters,
    canonical_region,
    paper_rtt_matrix,
    region_rtt_ms,
)
from repro.sim.rng import SeededRng


class TestRttTable:
    def test_paper_values(self):
        assert region_rtt_ms("US", "EU") == 148.0
        assert region_rtt_ms("US", "Asia") == 214.0
        assert region_rtt_ms("EU", "Asia") == 134.0

    def test_symmetry(self):
        assert region_rtt_ms("EU", "US") == region_rtt_ms("US", "EU")

    def test_diagonal_zero(self):
        for region in ("US", "EU", "Asia"):
            assert region_rtt_ms(region, region) == 0.0

    def test_alias_resolution(self):
        assert canonical_region("US") == "us-west1"
        assert canonical_region("asia") == "asia-south1"
        assert canonical_region("europe-west3") == "europe-west3"

    def test_unknown_pair_raises(self):
        with pytest.raises(ConfigurationError):
            region_rtt_ms("us-west1", "mars-north1")

    def test_paper_matrix_shape(self):
        matrix = paper_rtt_matrix()
        assert set(matrix) == {"US", "EU", "Asia"}
        assert matrix["US"]["Asia"] == 214.0
        assert matrix["Asia"]["US"] == 214.0


class TestLatencyModel:
    def _model(self) -> LatencyModel:
        return LatencyModel(SeededRng(3), LatencyParameters(jitter_fraction=0.0))

    def test_intra_region_is_submillisecond(self):
        model = self._model()
        model.place("a", "us-west1")
        model.place("b", "us-west1")
        assert model.one_way_latency("a", "b") < 0.002

    def test_cross_region_close_to_half_rtt(self):
        model = self._model()
        model.place("a", "us-west1")
        model.place("b", "asia-south1")
        latency = model.one_way_latency("a", "b")
        assert latency == pytest.approx(0.214 / 2, rel=0.05)

    def test_bandwidth_term_scales_with_size(self):
        model = self._model()
        model.place("a", "us-west1")
        model.place("b", "us-west1")
        small = model.one_way_latency("a", "b", size_bytes=0)
        large = model.one_way_latency("a", "b", size_bytes=10_000_000)
        assert large > small

    def test_set_rtt_override(self):
        model = self._model()
        model.place("a", "us-west1")
        model.place("b", "us-east5")
        model.set_rtt("us-west1", "us-east5", 400.0)
        assert model.one_way_latency("a", "b") == pytest.approx(0.2, rel=0.05)

    def test_unplaced_process_defaults_to_us(self):
        model = self._model()
        assert model.region_of("ghost") == "us-west1"

    def test_jitter_varies_latency(self):
        model = LatencyModel(SeededRng(4), LatencyParameters(jitter_fraction=0.2))
        model.place("a", "us-west1")
        model.place("b", "asia-south1")
        values = {round(model.one_way_latency("a", "b"), 6) for _ in range(20)}
        assert len(values) > 1
