"""Tests for the simulated network: routing, authentication, faults, CPU."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.links import AuthenticatedBestEffortBroadcast, AuthenticatedPerfectLink
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator


@dataclass
class Ping(Message):
    note: str = "hi"


class Recorder(Process):
    """A process that records everything delivered to it."""

    def __init__(self, process_id, simulator):
        super().__init__(process_id, simulator)
        self.received = []

    def on_message(self, sender, envelope):
        self.received.append((sender, envelope.payload, self.now))


def build_network(cpu_model=False, verify=True, seed=9):
    simulator = Simulator(seed=seed)
    registry = KeyRegistry(seed=seed)
    latency = LatencyModel(simulator.rng)
    network = Network(
        simulator, latency, registry, NetworkConfig(cpu_model=cpu_model, verify_envelopes=verify)
    )
    return simulator, network


class TestRouting:
    def test_point_to_point_delivery(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        AuthenticatedPerfectLink("a", network).send("b", Ping("one"))
        simulator.run()
        assert [p.note for _, p, _ in b.received] == ["one"]
        assert network.stats.messages_delivered == 1

    def test_broadcast_reaches_group_including_self(self):
        simulator, network = build_network()
        nodes = [Recorder(f"n{i}", simulator) for i in range(4)]
        for node in nodes:
            network.register(node, "us-west1")
        group = lambda: [n.process_id for n in nodes]
        AuthenticatedBestEffortBroadcast("n0", network, group).broadcast(Ping("all"))
        simulator.run()
        for node in nodes:
            assert len(node.received) == 1

    def test_unknown_destination_counts_as_dropped(self):
        simulator, network = build_network()
        a = Recorder("a", simulator)
        network.register(a, "us-west1")
        network.send("a", "ghost", Ping())
        simulator.run()
        assert network.stats.messages_dropped == 1

    def test_cross_region_slower_than_local(self):
        simulator, network = build_network()
        a, b, c = Recorder("a", simulator), Recorder("b", simulator), Recorder("c", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        network.register(c, "asia-south1")
        link = AuthenticatedPerfectLink("a", network)
        link.send("b", Ping())
        link.send("c", Ping())
        simulator.run()
        local_time = b.received[0][2]
        remote_time = c.received[0][2]
        assert remote_time > local_time * 10


class TestFaults:
    def test_crashed_receiver_gets_nothing(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        b.crash()
        AuthenticatedPerfectLink("a", network).send("b", Ping())
        simulator.run()
        assert b.received == []

    def test_crashed_sender_sends_nothing(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        a.crash()
        network.send("a", "b", Ping())
        simulator.run()
        assert b.received == []

    def test_partition_blocks_both_directions_until_removed(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        rule = network.partition(["a"], ["b"])
        link_a = AuthenticatedPerfectLink("a", network)
        link_b = AuthenticatedPerfectLink("b", network)
        link_a.send("b", Ping("lost"))
        link_b.send("a", Ping("lost"))
        simulator.run()
        assert a.received == [] and b.received == []
        network.remove_drop_rule(rule)
        link_a.send("b", Ping("found"))
        simulator.run()
        assert [p.note for _, p, _ in b.received] == ["found"]

    def test_isolate_single_process(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        network.isolate("b")
        AuthenticatedPerfectLink("a", network).send("b", Ping())
        simulator.run()
        assert b.received == []


class TestAuthentication:
    def test_forged_envelope_dropped(self):
        simulator, network = build_network(verify=True)
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        message = Ping("forged")
        bad_signature = network.registry.forge("a", message.digest())
        network.send("a", "b", message, bad_signature)
        simulator.run()
        assert b.received == []

    def test_valid_envelope_delivered_with_signature(self):
        simulator, network = build_network(verify=True)
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        AuthenticatedPerfectLink("a", network).send("b", Ping("ok"))
        simulator.run()
        assert len(b.received) == 1


class TestCpuModel:
    def test_cpu_queue_serializes_processing(self):
        simulator, network = build_network(cpu_model=True)
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        link = AuthenticatedPerfectLink("a", network)
        for _ in range(50):
            link.send("b", Ping())
        simulator.run()
        assert len(b.received) == 50
        arrival_times = [t for _, _, t in b.received]
        # With a serial CPU queue the last message finishes noticeably later
        # than the first (at least 50 * base+verify costs apart).
        assert arrival_times[-1] - arrival_times[0] > 40 * (
            network.config.base_processing + network.config.signature_verify_cost
        )

    def test_stats_by_type(self):
        simulator, network = build_network()
        a, b = Recorder("a", simulator), Recorder("b", simulator)
        network.register(a, "us-west1")
        network.register(b, "us-west1")
        AuthenticatedPerfectLink("a", network).send("b", Ping())
        simulator.run()
        assert network.stats.by_type["Ping"] == 1
        snapshot = network.stats.snapshot()
        assert snapshot["messages_sent"] == 1
