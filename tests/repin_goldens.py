"""Regenerate the pinned fixed-seed goldens (``python -m tests.repin_goldens``).

The E0 determinism goldens (``tests/goldens_e0.json``) pin a fixed-seed
scenario's metrics summary, network counters, and kernel event count
bit-for-bit.  Any change that alters simulated *timing* — not just real
behaviour — breaks them by design.

Golden re-pin policy (also summarized in the README):

* A re-pin is sanctioned only when a PR *deliberately* changes simulated
  semantics (event scheduling, latency arithmetic, delivery discipline) and
  says so; it must never be used to paper over an unexplained diff.
* Re-pin exactly once per such PR, via this module, and commit the printed
  diff summary in the PR description.
* Pure performance work must keep the goldens bit-identical; ``--check``
  (used by tests and CI) verifies that without rewriting anything.

Usage::

    PYTHONPATH=src python -m tests.repin_goldens          # rewrite + diff summary
    PYTHONPATH=src python -m tests.repin_goldens --check  # verify only (exit 1 on drift)
"""

from __future__ import annotations

import json
import os
import sys

GOLDENS_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens_e0.json")


def e0_spec():
    """The fixed-seed E0-style scenario the goldens pin."""
    from repro.harness.builder import Scenario

    return (
        Scenario("determinism-e0")
        .clusters(4, 4)
        .engine("hotstuff")
        .threads(4)
        .duration(2.0, warmup=0.25)
        .seeds(7)
        .spec()
    )


def compute_goldens() -> dict:
    """Run the pinned scenario once and return the golden values."""
    spec = e0_spec()
    deployment = spec.build()
    metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
    stats = deployment.network.stats
    snapshot = stats.snapshot()
    delivered = snapshot["messages_delivered"] + snapshot["loopback_messages"]
    events = deployment.simulator.events_processed
    operations = metrics.committed_count()
    return {
        "wire_messages_per_committed_op": (
            snapshot["messages_sent"] / operations if operations else 0.0
        ),
        "scenario": {
            "name": spec.name,
            "clusters": [list(cluster) for cluster in spec.clusters],
            "engine": "hotstuff",
            "threads": 4,
            "duration": 2.0,
            "warmup": 0.25,
            "seed": 7,
        },
        "summary": metrics.summary(),
        "network": snapshot,
        "events": events,
        "events_per_delivered_message": events / delivered if delivered else 0.0,
    }


def load_goldens() -> dict:
    """The committed goldens (empty dict if never pinned)."""
    if not os.path.exists(GOLDENS_PATH):
        return {}
    with open(GOLDENS_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _flatten(prefix: str, value) -> dict:
    if isinstance(value, dict):
        flat = {}
        for key, nested in value.items():
            flat.update(_flatten(f"{prefix}.{key}" if prefix else str(key), nested))
        return flat
    return {prefix: value}


def diff_summary(old: dict, new: dict) -> list:
    """Human-readable per-field diff lines between two golden dicts."""
    flat_old = _flatten("", old)
    flat_new = _flatten("", new)
    lines = []
    for key in sorted(set(flat_old) | set(flat_new)):
        before = flat_old.get(key, "<absent>")
        after = flat_new.get(key, "<absent>")
        if before == after:
            continue
        if isinstance(before, (int, float)) and isinstance(after, (int, float)) and before:
            lines.append(f"  {key}: {before} -> {after}  ({after / before:.3f}x)")
        else:
            lines.append(f"  {key}: {before} -> {after}")
    return lines


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    check_only = "--check" in argv
    old = load_goldens()
    new = compute_goldens()
    lines = diff_summary(old, new)
    if not lines:
        print(f"[goldens] {GOLDENS_PATH} is up to date (no drift)")
        return 0
    print(f"[goldens] {len(lines)} field(s) differ from the committed goldens:")
    for line in lines:
        print(line)
    if check_only:
        print("[goldens] --check: refusing to rewrite; see the re-pin policy in this "
              "module's docstring")
        return 1
    with open(GOLDENS_PATH, "w", encoding="utf-8") as handle:
        json.dump(new, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[goldens] re-pinned {GOLDENS_PATH}")
    print("[goldens] include the diff summary above in the PR that sanctions this re-pin")
    return 0


if __name__ == "__main__":
    sys.exit(main())
