"""Tests for the workload generators, clients, and metrics collector."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.harness.metrics import MetricsCollector
from repro.sim.rng import SeededRng
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.workload.zipf import ZipfianGenerator


class TestZipfian:
    def test_values_within_keyspace(self):
        zipf = ZipfianGenerator(100, 0.99, SeededRng(1))
        for _ in range(500):
            assert 0 <= zipf.next() < 100

    def test_skew_prefers_low_ranks(self):
        zipf = ZipfianGenerator(1000, 0.99, SeededRng(2))
        draws = [zipf.next() for _ in range(3000)]
        head = sum(1 for d in draws if d < 100)
        assert head > len(draws) * 0.4

    def test_theta_zero_is_roughly_uniform(self):
        zipf = ZipfianGenerator(10, 0.0, SeededRng(3))
        draws = [zipf.next() for _ in range(5000)]
        counts = [draws.count(i) for i in range(10)]
        assert max(counts) < 2 * min(counts)

    def test_probabilities_sum_to_one(self):
        zipf = ZipfianGenerator(50, 0.99, SeededRng(4))
        total = sum(zipf.probability(i) for i in range(50))
        assert total == pytest.approx(1.0)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0, 0.99, SeededRng(5))
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, -1.0, SeededRng(5))
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, 0.99, SeededRng(5)).probability(10)


class TestYcsb:
    def test_read_fraction_respected(self):
        workload = YcsbWorkload(YcsbConfig(read_fraction=0.85), SeededRng(6))
        ops = [workload.next_operation()[0] for _ in range(4000)]
        reads = ops.count("read") / len(ops)
        assert 0.80 < reads < 0.90

    def test_write_only_workload(self):
        workload = YcsbWorkload(YcsbConfig(read_fraction=0.0), SeededRng(7))
        assert all(op == "write" for op, _, _ in workload.operations(100))

    def test_writes_have_values_reads_do_not(self):
        workload = YcsbWorkload(YcsbConfig(read_fraction=0.5), SeededRng(8))
        for op, key, value in workload.operations(200):
            if op == "write":
                assert value is not None
            else:
                assert value is None
            assert key.startswith("user")

    def test_invalid_config_rejected(self):
        with pytest.raises(WorkloadError):
            YcsbConfig(read_fraction=1.5).validate()
        with pytest.raises(WorkloadError):
            YcsbConfig(key_space=0).validate()


class TestMetricsCollector:
    def _populated(self) -> MetricsCollector:
        metrics = MetricsCollector()
        for index in range(10):
            metrics.record_transaction(
                txn_id=f"t{index}",
                op="write" if index % 2 else "read",
                latency=0.01 * (index + 1),
                completed_at=float(index),
                client_id="c",
            )
        metrics.record_round(0, 1, 0.0, 0.01, 0.02, 0.025, transactions=5, reconfigs=1)
        metrics.record_round(0, 2, 0.03, 0.05, 0.08, 0.081, transactions=5, reconfigs=0)
        return metrics

    def test_counts_and_throughput(self):
        metrics = self._populated()
        metrics.set_window(0.0, 10.0)
        assert metrics.committed_count() == 10
        assert metrics.committed_count(op="read") == 5
        assert metrics.throughput(duration=10.0) == pytest.approx(1.0)

    def test_window_excludes_warmup(self):
        metrics = self._populated()
        metrics.set_window(5.0, 10.0)
        assert metrics.committed_count() == 5

    def test_latency_statistics(self):
        metrics = self._populated()
        metrics.set_window(0.0, None)
        assert metrics.mean_latency() == pytest.approx(0.055)
        assert metrics.mean_latency(op="read") < metrics.mean_latency(op="write")
        assert metrics.latency_percentile(0.99) >= metrics.latency_percentile(0.5)

    def test_stage_breakdown_averages(self):
        metrics = self._populated()
        breakdown = metrics.stage_breakdown()
        assert breakdown["stage1"] == pytest.approx((0.01 + 0.02) / 2)
        assert breakdown["stage2"] == pytest.approx((0.01 + 0.03) / 2)
        assert breakdown["stage3"] > 0

    def test_throughput_timeseries_buckets(self):
        metrics = self._populated()
        series = metrics.throughput_timeseries(bucket=2.0, until=10.0)
        assert len(series) == 5
        assert sum(v * 2.0 for _, v in series) == pytest.approx(10.0)

    def test_empty_collector_is_safe(self):
        metrics = MetricsCollector()
        assert metrics.throughput() == 0.0
        assert metrics.mean_latency() == 0.0
        assert metrics.latency_percentile(0.9) == 0.0
        assert metrics.stage_breakdown()["stage1"] == 0.0
        assert metrics.summary()["operations"] == 0.0
