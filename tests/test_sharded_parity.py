"""Serial-vs-sharded result parity (the PR 7 hard requirement).

The cluster-sharded kernel must be a pure execution-strategy knob: for any
fixed-seed scenario, the :class:`~repro.harness.runner.ResultRow` produced
serially, with the in-process sharded coordinator, and with forked shard
workers must be **byte-identical** (``to_json()`` equality, not approximate
metric agreement).  The suite sweeps miniature versions of every paper
experiment family E0–E8 plus the open-loop population presets, because each
family exercises a different slice of the shard surface: multi-region
latency, fault injection, joins/leaves, partitions, churn, RTT overrides,
and population workloads.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.harness.builder import Scenario
from repro.net.adversity import RttTrace
from repro.harness.runner import ScenarioRunner, run_scenario
from repro.sim.rng import StreamOwnershipError
from repro.sim.sharded import ShardedSimulator
from repro.sim.simulator import Simulator


def _row_json(spec) -> str:
    return run_scenario(spec).to_json()


def _with_shards(builder_fn, shards: int, parallel: bool = False):
    spec = builder_fn()
    spec.shards = shards
    spec.shard_parallel = parallel
    return spec


# --------------------------------------------------------------------------- #
# Miniature E0–E8 scenario family (short durations, full feature coverage)
# --------------------------------------------------------------------------- #
def _e0_baseline():
    return (
        Scenario("p-e0")
        .clusters(4, 4, 4, 4)
        .engine("hotstuff")
        .threads(2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(7)
        .spec()
    )


def _e1_multiregion():
    return (
        Scenario("p-e1")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "asia-south1"), (4, "us-west1"))
        .engine("hotstuff")
        .threads(2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(11)
        .spec()
    )


def _e2_stages():
    return (
        Scenario("p-e2")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"))
        .engine("hotstuff")
        .threads(2)
        .stages()
        .duration(0.8)
        .warmup(0.2)
        .seeds(13)
        .spec()
    )


def _e3_heterogeneity():
    return (
        Scenario("p-e3")
        .clusters((4, "us-west1"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .place("c1/r0", "asia-south1")
        .place("c1/r1", "asia-south1")
        .duration(0.8)
        .warmup(0.2)
        .seeds(17)
        .spec()
    )


def _e4_faults():
    return (
        Scenario("p-e4")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .crash_non_leaders(1, at=0.3)
        .crash_leader(2, at=0.4)
        .byzantine_leader(3, at=0.35)
        .timeseries(0.25)
        .duration(0.8)
        .warmup(0.2)
        .seeds(19)
        .spec()
    )


def _e5_join_leave():
    return (
        Scenario("p-e5")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .join(1, at=0.25)
        .join(3, at=0.3)
        .leave("c2/r3", at=0.35)
        .duration(0.8)
        .warmup(0.2)
        .seeds(23)
        .spec()
    )


def _e6_geobft():
    return (
        Scenario("p-e6")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "asia-south1"))
        .engine("bftsmart")
        .preset("geobft")
        .threads(2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(29)
        .spec()
    )


def _e7_churn():
    return (
        Scenario("p-e7")
        .clusters(4, 4, 4, 4, 4, 4)
        .engine("hotstuff")
        .threads(2)
        .churn(start=0.25, period=0.2, clusters=(0, 2, 4))
        .duration(0.8)
        .warmup(0.2)
        .seeds(31)
        .spec()
    )


def _e8_rtt_override():
    return (
        Scenario("p-e8")
        .clusters((4, "us-west1"), (4, "us-east5"), (4, "us-west1"), (4, "us-east5"))
        .engine("hotstuff")
        .threads(2)
        .rtt("us-west1", "us-east5", 219.0)
        .churn(start=0.3, period=0.25, clusters=(1,))
        .duration(0.8)
        .warmup(0.2)
        .seeds(37)
        .spec()
    )


def _partition():
    return (
        Scenario("p-part")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .partition(0, 1, at=0.25, duration=0.2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(41)
        .spec()
    )


def _population_steady():
    return (
        Scenario("p-pop-steady")
        .clusters(4, 4, 4, 4)
        .engine("hotstuff")
        .open_loop(clients=150, rate=250.0)
        .duration(0.8)
        .warmup(0.2)
        .seeds(43)
        .spec()
    )


def _population_preset():
    return (
        Scenario("p-pop-smoke")
        .clusters(4, 4, 4, 4)
        .engine("hotstuff")
        .open_loop(preset="smoke")
        .duration(0.8)
        .warmup(0.2)
        .seeds(47)
        .spec()
    )


def _adv_gray():
    return (
        Scenario("p-adv-gray")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .gray_leader(0, at=0.25, factor=50.0)
        .gray("c1/r2", at=0.3, factor=12.0, duration=0.2)
        .clock_skew("c2/r1", at=0.3, rate=0.2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(53)
        .spec()
    )


def _adv_flapping():
    return (
        Scenario("p-adv-flap")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .flapping_partition(0, 1, at=0.25, period=0.2, duty=0.5, cycles=2, direction="a_to_b")
        .duration(0.8)
        .warmup(0.2)
        .seeds(59)
        .spec()
    )


def _adv_outage():
    return (
        Scenario("p-adv-outage")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "asia-south1"), (4, "us-west1"))
        .engine("hotstuff")
        .threads(2)
        .region_outage("asia-south1", at=0.25, duration=0.2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(61)
        .spec()
    )


def _adv_congestion():
    return (
        Scenario("p-adv-congest")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .congestion(capacity_bytes_per_sec=2.0e7)
        .cross_traffic("us-west1", "europe-west3", 1.8e7, start=0.25, stop=0.6)
        .duration(0.8)
        .warmup(0.2)
        .seeds(67)
        .spec()
    )


def _adv_trace():
    trace = RttTrace.synthetic(
        pairs=[("us-west1", "europe-west3", 148.0)], duration=0.8, seed=71
    )
    return (
        Scenario("p-adv-trace")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff")
        .threads(2)
        .rtt_trace(trace)
        .duration(0.8)
        .warmup(0.2)
        .seeds(71)
        .spec()
    )


def _chained_e0():
    return (
        Scenario("p-ch-e0")
        .clusters(4, 4, 4, 4)
        .engine("hotstuff_chained")
        .threads(2)
        .duration(0.8)
        .warmup(0.2)
        .seeds(7)
        .spec()
    )


def _chained_faults():
    return (
        Scenario("p-ch-faults")
        .clusters((4, "us-west1"), (4, "europe-west3"), (4, "us-west1"), (4, "europe-west3"))
        .engine("hotstuff_chained")
        .threads(2)
        .crash_non_leaders(1, at=0.3)
        .crash_leader(2, at=0.4)
        .byzantine_leader(3, at=0.35)
        .duration(0.8)
        .warmup(0.2)
        .seeds(19)
        .spec()
    )


def _chained_open_leases():
    return (
        Scenario("p-ch-leases")
        .clusters(4, 4, 4, 4)
        .engine("hotstuff_chained")
        .open_loop(clients=150, rate=250.0)
        .read_leases(True)
        .duration(0.8)
        .warmup(0.2)
        .seeds(43)
        .spec()
    )


FAMILIES = {
    "e0": _e0_baseline,
    "e1": _e1_multiregion,
    "e2": _e2_stages,
    "e3": _e3_heterogeneity,
    "e4": _e4_faults,
    "e5": _e5_join_leave,
    "e6": _e6_geobft,
    "e7": _e7_churn,
    "e8": _e8_rtt_override,
    "partition": _partition,
    "pop-steady": _population_steady,
    "pop-preset": _population_preset,
    "adv-gray": _adv_gray,
    "adv-flapping": _adv_flapping,
    "adv-outage": _adv_outage,
    "adv-congestion": _adv_congestion,
    "adv-trace": _adv_trace,
    "chained-e0": _chained_e0,
    "chained-faults": _chained_faults,
    "chained-open-leases": _chained_open_leases,
}


class TestShardedParity:
    """to_json() equality serial vs sharded across the experiment families."""

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_family_rows_identical_at_two_and_four_shards(self, family):
        builder_fn = FAMILIES[family]
        serial = _row_json(builder_fn())
        for shards in (2, 4):
            sharded = _row_json(_with_shards(builder_fn, shards))
            assert sharded == serial, f"{family}: shards={shards} diverged from serial"

    def test_single_shard_spec_equals_unsharded(self):
        # shards=1 must use the exact serial code path, not a 1-way coordinator.
        assert _row_json(_with_shards(_e0_baseline, 1)) == _row_json(_e0_baseline())

    def test_chained_single_shard_spec_equals_unsharded(self):
        assert _row_json(_with_shards(_chained_e0, 1)) == _row_json(_chained_e0())


class TestShardParallelWorkers:
    """The forked-worker path reproduces the serial rows byte-for-byte."""

    def test_e0_parallel_workers_match_serial(self):
        serial = _row_json(_e0_baseline())
        assert _row_json(_with_shards(_e0_baseline, 2, parallel=True)) == serial
        assert _row_json(_with_shards(_e0_baseline, 4, parallel=True)) == serial

    def test_multiregion_and_churn_parallel_workers_match_serial(self):
        for builder_fn in (_e1_multiregion, _e7_churn):
            serial = _row_json(builder_fn())
            assert _row_json(_with_shards(builder_fn, 4, parallel=True)) == serial

    def test_population_parallel_workers_match_serial(self):
        serial = _row_json(_population_steady())
        assert _row_json(_with_shards(_population_steady, 4, parallel=True)) == serial

    def test_chained_parallel_workers_match_serial(self):
        # The chained engine's cross-replica state (grace timers, piggybacked
        # decides) is cluster-local, so forked shard workers must reproduce
        # the serial rows exactly, faults included.
        for builder_fn in (_chained_e0, _chained_faults):
            serial = _row_json(builder_fn())
            assert _row_json(_with_shards(builder_fn, 2, parallel=True)) == serial

    def test_partition_spec_falls_back_in_process_identically(self):
        # Partition drop rules read live replica state across clusters, so
        # the parallel runner must fall back — and still match serial.
        serial = _row_json(_partition())
        assert _row_json(_with_shards(_partition, 4, parallel=True)) == serial

    def test_adversity_specs_parallel_workers_match_serial(self):
        # Gray replicas, clock skew, congestion, and RTT traces are all
        # shard-local or derived identically from the spec in every worker,
        # so the forked path must reproduce the serial rows.
        for builder_fn in (_adv_gray, _adv_congestion, _adv_trace):
            serial = _row_json(builder_fn())
            assert _row_json(_with_shards(builder_fn, 2, parallel=True)) == serial

    def test_flapping_spec_falls_back_in_process_identically(self):
        # Flapping partitions share the steady-partition live-state problem:
        # the parallel runner falls back in process, byte-identically.
        serial = _row_json(_adv_flapping())
        assert _row_json(_with_shards(_adv_flapping, 4, parallel=True)) == serial


class TestSeedGridParallelism:
    """run_scenarios fans the full scenario×seed grid out to the pool."""

    def test_grid_rows_match_serial_execution(self):
        def grid():
            return (
                Scenario("p-grid")
                .clusters(4, 4)
                .engine("hotstuff")
                .threads(2)
                .duration(0.6)
                .warmup(0.1)
                .seeds(3, 5, 9)
                .specs()
            )

        serial_rows = ScenarioRunner(workers=1).run(grid())
        pooled_rows = ScenarioRunner(workers=2).run(grid())
        assert [row.to_json() for row in pooled_rows] == [row.to_json() for row in serial_rows]

    def test_grid_mixes_pooled_and_shard_parallel_specs(self):
        specs = (
            Scenario("p-mixed")
            .clusters(4, 4, 4, 4)
            .engine("hotstuff")
            .threads(2)
            .duration(0.6)
            .warmup(0.1)
            .seeds(3, 5)
            .specs()
        )
        specs[1].shards = 2
        specs[1].shard_parallel = True
        rows = ScenarioRunner(workers=2).run(specs)
        reference = [run_scenario(spec) for spec in specs]
        assert [row.to_json() for row in rows] == [row.to_json() for row in reference]


class TestStrictStreams:
    """Satellite: the RNG stream-ownership audit mode."""

    def test_e0_runs_clean_under_strict_streams(self):
        audited = _e0_baseline()
        audited.strict_streams = True
        assert _row_json(audited) == _row_json(_e0_baseline())

    def test_sharded_run_clean_under_strict_streams(self):
        audited = _with_shards(_e0_baseline, 2)
        audited.strict_streams = True
        assert _row_json(audited) == _row_json(_e0_baseline())

    def test_cross_owner_draw_raises(self):
        own = Simulator(seed=1, strict_streams=True)
        other = Simulator(seed=2, strict_streams=True)
        foreign_stream = other.rng.child("foreign")

        def probe():
            foreign_stream.random()

        own.schedule_at(0.1, probe, label="cross-owner-draw")
        with pytest.raises(StreamOwnershipError):
            own.run(until=1.0)


class TestShardedSimulatorKernel:
    """Unit coverage for the conservative coordinator itself."""

    def test_lookahead_violation_raises(self):
        sims = [Simulator(seed=1), Simulator(seed=1)]

        class FakePipeline:
            def __init__(self):
                self.batch = []

            def take_outbox(self):
                batch, self.batch = self.batch, []
                return batch

            def deliver_cross(self, arrival, destination, envelope):
                pass

        pipelines = [FakePipeline(), FakePipeline()]

        def emit():
            # Arrival before the window being simulated: the destination
            # shard already ran past it — a conservative violation.
            pipelines[0].batch.append((0.1, "a", 0, "b", None))

        sims[0].schedule_at(0.25, emit, label="bad-send")
        kernel = ShardedSimulator(sims, pipelines, lambda pid: 1, lambda: 0.2)
        with pytest.raises(SimulationError):
            kernel.run_for(1.0)

    def test_events_processed_sums_over_shards(self):
        sims = [Simulator(seed=1), Simulator(seed=2)]

        class NullPipeline:
            def take_outbox(self):
                return []

            def deliver_cross(self, arrival, destination, envelope):
                pass

        for sim in sims:
            for step in range(3):
                sim.schedule_at(0.1 * (step + 1), lambda: None, label="tick")
        kernel = ShardedSimulator(sims, [NullPipeline(), NullPipeline()], lambda pid: 0, lambda: 0.5)
        kernel.run_for(1.0)
        assert kernel.events_processed == sims[0].events_processed + sims[1].events_processed
        assert kernel.now == 1.0
