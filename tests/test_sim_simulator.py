"""Tests for the discrete-event simulator and timers."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue
from repro.sim.simulator import Simulator


class TestEventQueue:
    def test_events_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(3.0, lambda: fired.append("c"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_preserve_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abcde":
            queue.push(1.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.callback()
        assert fired == list("abcde")

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(0.5, lambda: fired.append("drop"))
        drop.cancel()
        event = queue.pop()
        assert event is keep

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.push(-1.0, lambda: None)

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append("early"))
        sim.schedule(5.0, lambda: seen.append("late"))
        sim.run(until=2.0)
        assert seen == ["early"]
        assert sim.now == 2.0
        sim.run()
        assert seen == ["early", "late"]

    def test_run_for_is_relative(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_for(3.0)
        assert sim.now == 3.0
        sim.run_for(2.0)
        assert sim.now == 5.0

    def test_nested_scheduling(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(0.5, inner)

        def inner():
            order.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 1.5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.1, rearm)

        sim.schedule(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run(until=1000.0, max_events=50)

    def test_stop_interrupts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop()))
        sim.schedule(2.0, lambda: seen.append(2))
        sim.run()
        assert seen == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i * 0.1, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestTimer:
    def test_timer_fires_after_duration(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]

    def test_timer_stop_prevents_firing(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.0, timer.stop)
        sim.run()
        assert fired == []

    def test_timer_restart_extends_deadline(self):
        sim = Simulator()
        fired = []
        timer = sim.timer(2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(1.5, timer.reset)
        sim.run()
        assert fired == [3.5]

    def test_timer_pending_and_remaining(self):
        sim = Simulator()
        timer = sim.timer(4.0, lambda: None)
        assert not timer.pending
        timer.start()
        assert timer.pending
        assert timer.remaining() == pytest.approx(4.0)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert not timer.pending
