"""Tests for the detlint static analyzer (rules, policy layers, CLI, ratchet)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path
from typing import Dict, List, Optional

import pytest

from repro.analysis.detlint import Baseline, Finding, LintReport, lint_paths
from repro.analysis.detlint.__main__ import main as detlint_main
from repro.analysis.detlint.engine import module_rel_path
from repro.analysis.detlint.rules import RULES
from repro.net.adversity import RttTrace
from repro.net.latency import LatencyModel, LatencyParameters
from repro.sim.rng import SeededRng, config_rng

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_FILE = REPO_ROOT / "detlint_baseline.json"


def run_lint(
    tmp_path: Path, files: Dict[str, str], baseline: Optional[Baseline] = None
) -> LintReport:
    """Write ``files`` (repro-relative paths) under ``tmp_path`` and lint them."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return lint_paths([str(tmp_path)], baseline=baseline)


def codes(report: LintReport) -> List[str]:
    return [finding.rule for finding in report.findings]


# ---------------------------------------------------------------------- #
# One positive and one negative fixture per rule
# ---------------------------------------------------------------------- #
class TestDet001WallClock:
    def test_positive_wall_clock_in_core(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/clock.py": """
                import time

                def now() -> float:
                    return time.time()
            """,
        })
        assert codes(report) == ["DET001"]
        assert report.findings[0].context == "now"

    def test_positive_resolves_import_aliases(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/sim/entropy.py": """
                from os import urandom

                def token() -> bytes:
                    return urandom(8)
            """,
        })
        assert codes(report) == ["DET001"]

    def test_negative_harness_may_measure_wall_time(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/harness/measure.py": """
                import time

                def stamp() -> float:
                    return time.time()
            """,
        })
        assert codes(report) == []


class TestDet002RawRandom:
    def test_positive_raw_random_in_net(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/net/noise.py": """
                import random

                def draw(seed: int) -> float:
                    return random.Random(seed).random()
            """,
        })
        assert codes(report) == ["DET002"]

    def test_positive_from_import(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/pick.py": """
                from random import choice
            """,
        })
        assert codes(report) == ["DET002"]

    def test_negative_rng_home_and_config_rng(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/sim/rng.py": """
                import random

                def make(seed: int) -> random.Random:
                    return random.Random(seed)
            """,
            "repro/net/uses.py": """
                from repro.sim.rng import config_rng

                def draw(seed: int) -> float:
                    return config_rng(seed).random()
            """,
        })
        assert codes(report) == []


class TestDet003SetIteration:
    def test_positive_for_loop_over_set(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/iterate.py": """
                def first(items: set):
                    for item in items:
                        return item
            """,
        })
        assert codes(report) == ["DET003"]

    def test_positive_dict_of_sets_and_self_attr(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/net/groups.py": """
                from typing import Dict

                class Index:
                    def __init__(self) -> None:
                        self._members: Dict[int, set] = {}
                        self._dirty = set()

                    def walk(self, group: int):
                        out = [m for m in self._members[group]]
                        for item in self._dirty:
                            out.append(item)
                        return out
            """,
        })
        assert codes(report) == ["DET003", "DET003"]

    def test_negative_sorted_and_order_free_consumers(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/safe.py": """
                def use(items: set):
                    total = sum(x for x in items)
                    low = min(items)
                    for item in sorted(items):
                        total += item
                    return total, low
            """,
        })
        assert codes(report) == []

    def test_negative_outside_shard_owned_packages(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/harness/tooling.py": """
                def first(items: set):
                    for item in items:
                        return item
            """,
        })
        assert codes(report) == []


class TestDet004ModuleState:
    def test_positive_module_cache(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/cache.py": """
                _seen = {}
            """,
        })
        assert codes(report) == ["DET004"]
        assert report.findings[0].context == "_seen"

    def test_negative_constant_tables_and_dunders(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/net/tables.py": """
                RTT_TABLE = {("a", "b"): 1.0}
                __all__ = ["RTT_TABLE"]
            """,
        })
        assert codes(report) == []


class TestDet005IdentityOrdering:
    def test_positive_id_and_hash_in_ordering(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/sim/order.py": """
                def order(items):
                    return sorted(items, key=lambda item: hash(item.name))

                def key_of(item):
                    return id(item)
            """,
        })
        assert sorted(codes(report)) == ["DET005", "DET005"]

    def test_negative_hash_outside_ordering(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/sim/memo.py": """
                def memo_key(item):
                    return hash(item)
            """,
        })
        assert codes(report) == []


class TestSlot001Slots:
    def test_positive_message_subclass_without_slots(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/msg.py": """
                from dataclasses import dataclass

                from repro.net.message import Message

                @dataclass
                class Probe(Message):
                    value: int = 0
            """,
        })
        assert codes(report) == ["SLOT001"]
        assert report.findings[0].context == "Probe"

    def test_positive_configured_hot_path_class(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/sim/events.py": """
                class EventQueue:
                    def __init__(self) -> None:
                        self._heap = []
            """,
        })
        assert codes(report) == ["SLOT001"]

    def test_negative_with_slots(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/sim/events.py": """
                class EventQueue:
                    __slots__ = ("_heap",)

                    def __init__(self) -> None:
                        self._heap = []
            """,
        })
        assert codes(report) == []


class TestReg001MessageContract:
    def test_positive_unregistered_plain_class_without_cost(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/messages.py": """
                from dataclasses import dataclass
                from typing import Tuple

                from repro.net.crypto import Certificate, Signature
                from repro.net.message import Message

                class Bare(Message):
                    pass

                @dataclass
                class Quorum(Message):
                    __slots__ = ()
                    certificate: Tuple[Signature, ...] = ()

                CORE_MESSAGE_TYPES = (Quorum,)
            """,
        })
        reg = [f for f in report.findings if f.rule == "REG001"]
        # Bare: not a dataclass + unregistered; Quorum: no verification_cost.
        assert len(reg) == 3
        assert {f.context for f in reg} == {"Bare", "Quorum"}

    def test_negative_conforming_message(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/messages.py": """
                from dataclasses import dataclass

                from repro.net.crypto import Certificate
                from repro.net.message import Message

                @dataclass
                class Sealed(Message):
                    __slots__ = ()
                    certificate: Certificate = None

                    def verification_cost(self) -> int:
                        return len(self.certificate)

                CORE_MESSAGE_TYPES = (Sealed,)
            """,
        })
        assert codes(report) == []


class TestSer001SpecSerialization:
    def test_positive_unserializable_reachable_field(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/harness/spec.py": """
                from dataclasses import dataclass, field
                from typing import List

                class Opaque:
                    pass

                @dataclass
                class Nested:
                    handle: Opaque = None

                @dataclass
                class ScenarioSpec:
                    name: str = "s"
                    nested: List[Nested] = field(default_factory=list)
            """,
        })
        assert codes(report) == ["SER001"]
        assert report.findings[0].context == "Nested.handle"

    def test_negative_equipped_and_plain_safe_classes(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/harness/spec.py": """
                from dataclasses import dataclass, field
                from typing import Dict, List, Optional, Tuple

                class Opaque:
                    pass

                @dataclass
                class Equipped:
                    handle: Opaque = None

                    def to_dict(self) -> Dict[str, object]:
                        return {}

                    @classmethod
                    def from_dict(cls, payload: Dict[str, object]) -> "Equipped":
                        return cls()

                @dataclass
                class Plain:
                    label: str = ""
                    weights: Tuple[float, ...] = ()

                @dataclass
                class ScenarioSpec:
                    name: str = "s"
                    plain: Optional[Plain] = None
                    equipped: Equipped = None
                    labels: Dict[str, object] = field(default_factory=dict)
            """,
        })
        assert codes(report) == []

    def test_positive_module_function_serializers_detected(self, tmp_path):
        # A class equipped via population_to_dict-style module functions is
        # trusted even when its fields are not plainly JSON-safe.
        report = run_lint(tmp_path, {
            "repro/harness/spec.py": """
                from dataclasses import dataclass
                from typing import Callable, Dict, Optional

                @dataclass
                class Shape:
                    fn: Callable = None

                def shape_to_dict(shape: Shape) -> Dict[str, object]:
                    return {}

                def shape_from_dict(payload: Dict[str, object]) -> Shape:
                    return Shape()

                @dataclass
                class ScenarioSpec:
                    shape: Optional[Shape] = None
            """,
        })
        assert codes(report) == []


# ---------------------------------------------------------------------- #
# Policy layers: suppressions and baseline
# ---------------------------------------------------------------------- #
class TestSuppressions:
    def test_inline_disable_with_rationale(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/cache.py": """
                _memo = {}  # detlint: disable=DET004 -- pure memo of derived values
            """,
        })
        assert codes(report) == []
        assert report.suppressed == 1

    def test_disable_must_name_the_rule(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/cache.py": """
                _memo = {}  # detlint: disable=DET001 -- wrong code
            """,
        })
        assert codes(report) == ["DET004"]

    def test_file_wide_disable(self, tmp_path):
        report = run_lint(tmp_path, {
            "repro/core/legacy.py": """
                # detlint: disable-file=DET004 -- legacy module, tracked in #123
                _a = {}
                _b = []
            """,
        })
        assert codes(report) == []
        assert report.suppressed == 2


class TestBaseline:
    FILES = {
        "repro/core/cache.py": """
            _seen = {}
            _more = []
        """,
    }

    def test_round_trip_sanctions_findings(self, tmp_path):
        report = run_lint(tmp_path, self.FILES)
        assert codes(report) == ["DET004", "DET004"]

        path = tmp_path / "baseline.json"
        Baseline.from_findings(report.findings, {"DET004": "legacy"}).save(str(path))
        loaded = Baseline.load(str(path))

        clean = run_lint(tmp_path, self.FILES, baseline=loaded)
        assert clean.clean
        assert clean.baselined == 2

    def test_stale_entries_fail_the_run(self, tmp_path):
        report = run_lint(tmp_path, self.FILES)
        baseline = Baseline.from_findings(report.findings)

        fixed = run_lint(tmp_path, {"repro/core/cache.py": "_seen_no_more = 1\n"}, baseline=baseline)
        assert codes(fixed) == []
        assert len(fixed.stale_baseline) == 2
        assert not fixed.clean

    def test_keys_are_line_number_free(self, tmp_path):
        report = run_lint(tmp_path, self.FILES)
        baseline = Baseline.from_findings(report.findings)

        moved = run_lint(tmp_path, {
            "repro/core/cache.py": """
                # A comment pushing everything down several lines.
                # Another one.

                _seen = {}
                _more = []
            """,
        }, baseline=baseline)
        assert moved.clean


class TestShippedTreeAndRatchet:
    def test_shipped_tree_is_clean_under_checked_in_baseline(self):
        baseline = Baseline.load(str(BASELINE_FILE))
        report = lint_paths([str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")], baseline=baseline)
        assert report.findings == [], [f.render() for f in report.findings]
        assert report.stale_baseline == [], report.stale_baseline
        assert report.errors == []

    def test_baseline_never_grows(self):
        # The ratchet ceiling: the 35 sanctioned SLOT001 entries for Message
        # subclasses (whose digest caches deliberately live in __dict__).
        # Shrinking is progress; growing needs a reviewed rationale AND a
        # bump here.
        payload = json.loads(BASELINE_FILE.read_text())
        assert len(payload["entries"]) <= 35

    def test_every_baseline_entry_has_a_real_rationale(self):
        payload = json.loads(BASELINE_FILE.read_text())
        for entry in payload["entries"]:
            assert entry.get("rationale"), entry
            assert "TODO" not in entry["rationale"], entry

    def test_rule_registry_is_complete(self):
        assert set(RULES) == {
            "DET001", "DET002", "DET003", "DET004", "DET005",
            "SLOT001", "REG001", "SER001",
        }


# ---------------------------------------------------------------------- #
# CLI
# ---------------------------------------------------------------------- #
class TestCli:
    def _write(self, tmp_path: Path, rel: str, source: str) -> None:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))

    def test_exit_zero_on_clean_tree(self, tmp_path):
        self._write(tmp_path, "repro/core/ok.py", "VALUE = 1\n")
        assert detlint_main([str(tmp_path), "--no-baseline"]) == 0

    def test_exit_one_on_findings(self, tmp_path, capsys):
        self._write(tmp_path, "repro/core/bad.py", "import time\nT = time.time()\n")
        assert detlint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_exit_two_on_parse_error(self, tmp_path):
        self._write(tmp_path, "repro/core/broken.py", "def oops(:\n")
        assert detlint_main([str(tmp_path), "--no-baseline"]) == 2

    def test_write_baseline_then_gate(self, tmp_path):
        self._write(tmp_path, "repro/core/bad.py", "_cache = {}\n")
        baseline = tmp_path / "baseline.json"
        assert detlint_main([str(tmp_path), "--write-baseline", "--baseline", str(baseline)]) == 0
        assert detlint_main([str(tmp_path), "--baseline", str(baseline)]) == 0
        # Fixing the code makes the entry stale: the gate demands deletion.
        self._write(tmp_path, "repro/core/bad.py", "VALUE = 1\n")
        assert detlint_main([str(tmp_path), "--baseline", str(baseline)]) == 1

    def test_stats_output(self, tmp_path):
        self._write(tmp_path, "repro/core/bad.py", "_cache = {}\n")
        stats = tmp_path / "stats.json"
        detlint_main([str(tmp_path), "--no-baseline", "--stats", str(stats)])
        payload = json.loads(stats.read_text())
        assert payload["actionable"] == 1
        assert payload["by_rule"] == {"DET004": 1}

    def test_json_output(self, tmp_path, capsys):
        self._write(tmp_path, "repro/core/bad.py", "_cache = {}\n")
        detlint_main([str(tmp_path), "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "DET004"
        assert payload[0]["path"] == "repro/core/bad.py"


class TestModuleRelPath:
    def test_rightmost_repro_component_wins(self):
        assert module_rel_path("/a/src/repro/net/x.py") == "repro/net/x.py"
        assert module_rel_path("/tmp/fix/repro/core/repro/sim/y.py") == "repro/sim/y.py"

    def test_paths_without_repro_stay_as_given(self):
        assert module_rel_path("tests/test_x.py") == "tests/test_x.py"


# ---------------------------------------------------------------------- #
# Satellite regressions: the fixes detlint forced
# ---------------------------------------------------------------------- #
class TestAdversityRngMigration:
    # Pinned from the pre-migration generator (bare random.Random(seed)):
    # config_rng(seed) must replay these traces byte-for-byte.
    GOLDEN = {
        ("asia-south1", "us-west1"): [
            (0.0, 230.0), (2.0, 186.737), (4.0, 221.645), (6.0, 234.528),
            (8.0, 569.539), (10.0, 460.0), (12.0, 378.179),
        ],
        ("europe-west3", "us-west1"): [
            (0.0, 148.0), (2.0, 134.964), (4.0, 318.338), (6.0, 237.352),
            (8.0, 150.095), (10.0, 114.58), (12.0, 232.339),
        ],
    }

    def test_synthetic_trace_bytes_unchanged(self):
        trace = RttTrace.synthetic(
            pairs=[("us-west1", "europe-west3", 148.0), ("us-west1", "asia-south1", 230.0)],
            duration=10.0,
            seed=7,
            step=2.0,
        )
        assert trace.segments == self.GOLDEN

    def test_config_rng_matches_plain_seeding(self):
        import random

        ours = config_rng(123)
        reference = random.Random(123)
        assert [ours.random() for _ in range(5)] == [reference.random() for _ in range(5)]


class TestCrossGroupPairOrdering:
    def test_pairs_are_sorted_and_deterministic(self):
        model = LatencyModel(SeededRng(3), LatencyParameters(jitter_fraction=0.0))
        model.place("p1", "us-west1")
        model.place("p2", "europe-west3")
        model.place("p3", "asia-south1")
        model.place("p4", "us-east1")
        groups = {"p1": 0, "p2": 0, "p3": 1, "p4": 1}
        pairs = model._cross_group_region_pairs(groups)
        assert pairs == [
            ("europe-west3", "asia-south1"),
            ("europe-west3", "us-east1"),
            ("us-west1", "asia-south1"),
            ("us-west1", "us-east1"),
        ]
        assert pairs == model._cross_group_region_pairs(dict(reversed(groups.items())))
