"""Reconfiguration end to end: joins, leaves, uniformity, kick-start."""

from __future__ import annotations

import pytest

from helpers import fast_config, small_deployment
from repro.core.config import failure_threshold
from repro.core.replica import MODE_ACTIVE, MODE_LEFT


class TestJoin:
    def test_join_completes_and_membership_updates_everywhere(self):
        deployment = small_deployment(seed=61)
        joiner = deployment.add_joiner(0, at_time=0.6, replica_id="newbie")
        deployment.run(duration=4.0)
        assert joiner.mode == MODE_ACTIVE
        assert joiner.joined_at is not None
        for replica in deployment.replicas.values():
            if replica.mode == MODE_ACTIVE:
                assert "newbie" in replica.view[0], f"{replica.process_id} missed the join"

    def test_joined_replica_has_transferred_state_and_participates(self):
        deployment = small_deployment(seed=62)
        joiner = deployment.add_joiner(0, at_time=0.6, replica_id="newbie")
        deployment.run(duration=4.0)
        assert joiner.executed_rounds > 0
        # The joiner's round number tracks the cluster within one round.
        reference = deployment.replicas["c0/r0"]
        assert abs(joiner.round_number - reference.round_number) <= 1

    def test_failure_threshold_recomputed_after_joins(self):
        deployment = small_deployment(seed=63)
        for index in range(3):
            deployment.add_joiner(0, at_time=0.5 + 0.1 * index, replica_id=f"new{index}")
        deployment.run(duration=5.0)
        reference = deployment.replicas["c1/r0"]
        size = len(reference.view[0])
        assert size == 7
        assert reference.faults(0) == failure_threshold(7) == 2

    def test_remote_cluster_learns_about_join(self):
        deployment = small_deployment(seed=64)
        deployment.add_joiner(1, at_time=0.6, replica_id="remote-new")
        deployment.run(duration=4.0)
        observer = deployment.replicas["c0/r0"]
        assert "remote-new" in observer.view[1]


class TestLeave:
    def test_leave_removes_member_everywhere(self):
        deployment = small_deployment(clusters=((4, "us-west1"), (7, "us-west1")), seed=65)
        deployment.schedule_leave("c1/r6", at_time=0.6)
        deployment.run(duration=4.0)
        leaver = deployment.replicas["c1/r6"]
        assert leaver.mode == MODE_LEFT
        assert leaver.left_at is not None
        for replica_id in ("c0/r0", "c1/r0"):
            assert "c1/r6" not in deployment.replicas[replica_id].view[1]

    def test_cluster_keeps_operating_after_leave(self):
        deployment = small_deployment(clusters=((4, "us-west1"), (7, "us-west1")), seed=66)
        deployment.schedule_leave("c1/r6", at_time=0.6)
        metrics = deployment.run(duration=4.0)
        late_writes = [r for r in metrics.transactions if r.completed_at > 3.0 and r.op == "write"]
        assert late_writes

    def test_join_and_leave_in_same_window(self):
        deployment = small_deployment(clusters=((7, "us-west1"), (7, "us-west1")), seed=67)
        deployment.add_joiner(0, at_time=0.6, replica_id="n0")
        deployment.schedule_leave("c0/r6", at_time=0.8)
        deployment.run(duration=5.0)
        observer = deployment.replicas["c1/r0"]
        assert "n0" in observer.view[0]
        assert "c0/r6" not in observer.view[0]


class TestUniformity:
    def test_all_replicas_apply_same_reconfigs_in_same_round(self):
        deployment = small_deployment(seed=68)
        deployment.add_joiner(0, at_time=0.6, replica_id="newbie")
        deployment.run(duration=4.0)
        applications = {}
        for replica in deployment.replicas.values():
            for round_number, request in replica.reconfigs_applied:
                if request.process_id == "newbie":
                    applications.setdefault(replica.process_id, round_number)
        # Every active replica applied the join, and all in the same round.
        assert len(applications) >= 8
        assert len(set(applications.values())) == 1

    def test_views_remain_consistent_across_clusters(self):
        deployment = small_deployment(seed=69)
        deployment.add_joiner(0, at_time=0.5, replica_id="a")
        deployment.add_joiner(1, at_time=0.7, replica_id="b")
        deployment.run(duration=5.0)
        views = [
            (tuple(sorted(r.view[0])), tuple(sorted(r.view[1])))
            for r in deployment.replicas.values()
            if r.mode == MODE_ACTIVE
        ]
        assert len(set(views)) == 1, "active replicas disagree on membership"


class TestSingleWorkflowBaseline:
    def test_single_workflow_also_applies_reconfigs(self):
        from repro.baselines.single_workflow import build_single_workflow_deployment

        deployment = build_single_workflow_deployment(
            [(4, "us-west1"), (4, "us-west1")],
            seed=70,
            client_threads=4,
            config=fast_config(),
        )
        joiner = deployment.add_joiner(0, at_time=0.6, replica_id="sw-new")
        deployment.run(duration=4.0)
        observer = deployment.replicas["c1/r0"]
        assert "sw-new" in observer.view[0]
