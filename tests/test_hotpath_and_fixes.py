"""Regression tests for the hot-path overhaul and the metrics/fault fixes.

The determinism goldens live in ``tests/goldens_e0.json`` and pin a
fixed-seed E0 run to *bit-identical* simulation results: any future change
that alters event ordering or delivery timing must consciously re-record
them via ``python -m tests.repin_goldens`` (see that module's docstring for
the re-pin policy).  The goldens were last re-pinned by the fused
delivery-pipeline PR, which deliberately changed simulated timing (true
0 ms loop-back, one fused hand-over event per wire message).
"""

from __future__ import annotations

import pytest

from repro.core.replica import MODE_ACTIVE, MODE_IDLE
from repro.errors import SimulationError
from repro.harness.builder import Scenario
from repro.harness.metrics import MetricsCollector
from repro.harness.runner import ScenarioRunner
from repro.sim.events import EventQueue, noop
from repro.sim.simulator import Simulator
from tests.repin_goldens import e0_spec, load_goldens


# ---------------------------------------------------------------------- #
# MetricsCollector.throughput_timeseries
# ---------------------------------------------------------------------- #
def _collector_with_completions(times):
    collector = MetricsCollector()
    for index, completed_at in enumerate(times):
        collector.record_transaction(f"t{index}", "write", 0.01, completed_at, "c")
    return collector


class TestThroughputTimeseries:
    def test_completion_on_bucket_boundary_lands_in_later_bucket(self):
        collector = _collector_with_completions([0.5, 1.0, 1.5, 2.0])
        series = collector.throughput_timeseries(bucket=1.0, until=3.0)
        assert series == [(0.0, 1.0), (1.0, 2.0), (2.0, 1.0)]

    def test_no_completion_is_dropped_or_double_counted(self):
        times = [i * 0.25 for i in range(20)]  # includes every bucket boundary
        collector = _collector_with_completions(times)
        series = collector.throughput_timeseries(bucket=1.0, until=5.0)
        assert sum(count for _, count in series) == len(times)

    def test_empty_collector_with_horizon_emits_zero_buckets(self):
        series = MetricsCollector().throughput_timeseries(bucket=1.0, until=2.0)
        assert series == [(0.0, 0.0), (1.0, 0.0)]


# ---------------------------------------------------------------------- #
# MetricsCollector.latency_percentile (nearest-rank)
# ---------------------------------------------------------------------- #
def _collector_with_latencies(latencies):
    collector = MetricsCollector()
    for index, latency in enumerate(latencies):
        collector.record_transaction(f"t{index}", "write", latency, 1.0, "c")
    return collector


class TestLatencyPercentile:
    def test_median_of_two_samples_is_the_smaller(self):
        assert _collector_with_latencies([1.0, 2.0]).latency_percentile(0.5) == 1.0

    def test_nearest_rank_goldens(self):
        collector = _collector_with_latencies([float(i) for i in range(1, 101)])
        assert collector.latency_percentile(0.50) == 50.0
        assert collector.latency_percentile(0.99) == 99.0
        assert collector.latency_percentile(1.00) == 100.0
        assert collector.latency_percentile(0.01) == 1.0
        assert collector.latency_percentile(0.0) == 1.0  # clamped to first rank

    def test_empty_window_returns_zero(self):
        assert MetricsCollector().latency_percentile(0.99) == 0.0


# ---------------------------------------------------------------------- #
# Simulator.run(max_events=N) exactness
# ---------------------------------------------------------------------- #
class TestMaxEventsValve:
    def test_trips_after_exactly_n_events(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.1, rearm)

        sim.schedule(0.1, rearm)
        with pytest.raises(SimulationError):
            sim.run(until=1000.0, max_events=50)
        assert sim.events_processed == 50

    def test_exact_budget_drains_cleanly(self):
        sim = Simulator()
        for index in range(5):
            sim.schedule(0.1 * (index + 1), noop)
        sim.run(max_events=5)
        assert sim.events_processed == 5


# ---------------------------------------------------------------------- #
# FaultInjector.partition_clusters after a join
# ---------------------------------------------------------------------- #
class TestPartitionAfterJoin:
    def test_replicas_joining_before_or_during_the_partition_are_partitioned(self):
        spec = (
            Scenario("join-then-partition")
            .clusters(4, 4)
            .engine("hotstuff")
            .threads(2)
            .join(cluster=0, at=0.5, replica_id="newbie")
            .join(cluster=0, at=4.3, replica_id="late")  # mid-partition window
            .partition(0, 1, at=4.0, duration=2.0)
            .duration(5.0)
            .seeds(3)
            .spec()
        )
        deployment = spec.build()
        deployment.run(duration=spec.duration)
        assert deployment.replica("newbie").mode == MODE_ACTIVE
        assert deployment.replica("late").mode != MODE_IDLE  # requested at 4.3
        network = deployment.network

        def crossing(sender, destination):
            return network._should_drop(sender, destination, None)

        assert crossing("newbie", "c1/r0"), "joined replica must be inside the partition"
        assert crossing("late", "c1/r0"), "mid-window joiner must be partitioned too"
        assert crossing("c1/r0", "newbie"), "partitions drop traffic both ways"
        assert not crossing("newbie", "c0/r0"), "intra-cluster traffic must survive"


# ---------------------------------------------------------------------- #
# Event kernel: cancelled-event compaction and arg-carrying events
# ---------------------------------------------------------------------- #
class TestEventKernel:
    def test_timer_churn_does_not_grow_the_heap(self):
        queue = EventQueue()
        for index in range(5000):
            event = queue.push(1000.0 + index, noop)
            event.cancel()
            queue.notify_cancel()
        assert len(queue) == 0
        # Auto-compaction keeps dead entries bounded instead of retaining
        # all 5000 until their deadlines.
        assert len(queue._heap) < 600

    def test_pop_due_respects_the_limit(self):
        queue = EventQueue()
        queue.push(1.0, noop)
        queue.push(3.0, noop)
        assert queue.pop_due(2.0).time == 1.0
        assert queue.pop_due(2.0) is None
        assert len(queue) == 1  # the 3.0 event was left queued

    def test_scheduled_arg_is_passed_to_the_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, arg="payload")
        sim.schedule(2.0, lambda: seen.append("no-arg"))
        sim.run()
        assert seen == ["payload", "no-arg"]

    def test_insertion_order_is_stable_with_args(self):
        sim = Simulator()
        seen = []
        for name in "abcde":
            sim.schedule(1.0, seen.append, arg=name)
        sim.run()
        assert seen == list("abcde")


# ---------------------------------------------------------------------- #
# Determinism: a fixed-seed run reproduces the pinned goldens exactly
# ---------------------------------------------------------------------- #
class TestHotPathDeterminism:
    def test_fixed_seed_e0_matches_pinned_goldens(self):
        goldens = load_goldens()
        assert goldens, "goldens_e0.json missing; run `python -m tests.repin_goldens`"
        spec = e0_spec()
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        assert metrics.summary() == goldens["summary"]
        assert deployment.network.stats.snapshot() == goldens["network"]
        assert deployment.simulator.events_processed == goldens["events"]

    def test_serial_and_parallel_rows_stay_byte_identical(self):
        specs = [e0_spec().with_seed(seed) for seed in (1, 2)]
        serial = ScenarioRunner(workers=1).run(specs)
        parallel = ScenarioRunner(workers=2).run(specs)
        assert [row.to_json() for row in serial] == [row.to_json() for row in parallel]
