"""Tests for Byzantine Reliable Dissemination (Alg. 5/6)."""

from __future__ import annotations

import pytest

from repro.core.brd import (
    ByzantineReliableDissemination,
    CollectionEntry,
    CollectionProof,
    canonical_recs,
    ready_digest,
    submit_digest,
)
from repro.core.types import join_request, leave_request
from repro.net.crypto import KeyRegistry
from tests import helpers
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator


class BrdHost(Process):
    """A process hosting one BRD instance."""

    def __init__(self, process_id, simulator, network, members, leader, timeout=1.0):
        super().__init__(process_id, simulator)
        network.register(self, "us-west1")
        self.delivered = []
        self.complaints = []
        self.brd = ByzantineReliableDissemination(
            owner=process_id,
            cluster_id=0,
            round_number=1,
            members_fn=helpers.members_fn(members),
            faults_fn=lambda: (len(members) - 1) // 3,
            network=network,
            simulator=simulator,
            leader=leader,
            view_ts=0,
            timeout=timeout,
            on_deliver=lambda recs, proof, cert: self.delivered.append((recs, proof, cert)),
            on_complain=self.complaints.append,
        )

    def on_message(self, sender, envelope):
        self.brd.on_message(sender, envelope)


def build_brd_cluster(size=4, seed=4, timeout=1.0):
    simulator = Simulator(seed=seed)
    registry = KeyRegistry(seed=seed)
    network = Network(
        simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=False)
    )
    members = [f"p{i}" for i in range(size)]
    leader = members[0]
    hosts = [BrdHost(m, simulator, network, members, leader, timeout) for m in members]
    return simulator, network, hosts


class TestHappyPath:
    def test_all_replicas_deliver_union_of_submissions(self):
        simulator, _, hosts = build_brd_cluster()
        requests = {
            "p0": (join_request("new1", 0),),
            "p1": (join_request("new1", 0), leave_request("p3", 0)),
            "p2": (),
            "p3": (join_request("new2", 0),),
        }
        for host in hosts:
            host.brd.broadcast(requests[host.process_id])
        simulator.run(until=5.0)
        expected_union = canonical_recs(
            [join_request("new1", 0), leave_request("p3", 0), join_request("new2", 0)]
        )
        for host in hosts:
            assert len(host.delivered) == 1
            recs, proof, cert = host.delivered[0]
            # Integrity: the delivered set is aggregated from a quorum, so it
            # contains every request that a quorum stored.  With all-correct
            # submitters the union is exact.
            assert set(recs) <= set(expected_union)
            assert join_request("new1", 0) in recs

    def test_uniformity_across_replicas(self):
        simulator, _, hosts = build_brd_cluster(size=7)
        for index, host in enumerate(hosts):
            host.brd.broadcast((join_request(f"n{index % 3}", 0),))
        simulator.run(until=5.0)
        delivered_sets = {repr(host.delivered[0][0]) for host in hosts}
        assert len(delivered_sets) == 1

    def test_no_duplication(self):
        simulator, _, hosts = build_brd_cluster()
        for host in hosts:
            host.brd.broadcast(())
        simulator.run(until=5.0)
        assert all(len(host.delivered) == 1 for host in hosts)

    def test_ready_certificate_is_remotely_verifiable(self):
        simulator, network, hosts = build_brd_cluster()
        for host in hosts:
            host.brd.broadcast((join_request("new1", 0),))
        simulator.run(until=5.0)
        recs, _, cert = hosts[0].delivered[0]
        members = [h.process_id for h in hosts]
        assert network.registry.certificate_valid(
            cert, members, threshold=3, digest=ready_digest(0, 1, recs)
        )

    def test_empty_sets_still_deliver(self):
        simulator, _, hosts = build_brd_cluster()
        for host in hosts:
            host.brd.broadcast(())
        simulator.run(until=5.0)
        assert all(host.delivered[0][0] == () for host in hosts)


class TestLeaderFailure:
    def test_silent_leader_triggers_complaints(self):
        simulator, _, hosts = build_brd_cluster(timeout=0.5)
        hosts[0].crash()  # the leader never aggregates
        for host in hosts[1:]:
            host.brd.broadcast((join_request("newX", 0),))
        simulator.run(until=2.0)
        assert all(host.complaints for host in hosts[1:])

    def test_leader_change_still_delivers_uniformly(self):
        simulator, _, hosts = build_brd_cluster(timeout=0.5)
        hosts[0].crash()
        for host in hosts[1:]:
            host.brd.broadcast((join_request("newX", 0),))

        def rotate():
            for host in hosts[1:]:
                host.brd.new_leader("p1", 1)

        simulator.schedule(1.0, rotate)
        simulator.run(until=6.0)
        delivered = [host.delivered[0][0] for host in hosts[1:]]
        assert all(d == delivered[0] for d in delivered)
        assert join_request("newX", 0) in delivered[0]

    def test_timer_stops_after_delivery(self):
        simulator, _, hosts = build_brd_cluster(timeout=0.8)
        for host in hosts:
            host.brd.broadcast(())
        simulator.run(until=5.0)
        assert all(not host.complaints for host in hosts)


class TestValidation:
    def test_collection_proof_requires_quorum(self):
        simulator, network, hosts = build_brd_cluster()
        brd = hosts[1].brd
        recs = (join_request("new1", 0),)
        entry = CollectionEntry(
            sender="p0",
            recs=recs,
            signature=network.registry.sign("p0", submit_digest(0, 1, recs)),
        )
        proof = CollectionProof(cluster_id=0, round_number=1, entries=(entry,))
        assert not brd.collection_valid(proof, recs)

    def test_collection_proof_rejects_dropped_requests(self):
        """A leader cannot claim an aggregate that omits a submitted request."""
        simulator, network, hosts = build_brd_cluster()
        brd = hosts[1].brd
        full = (join_request("new1", 0), join_request("new2", 0))
        entries = []
        for sender in ("p0", "p1", "p2"):
            entries.append(
                CollectionEntry(
                    sender=sender,
                    recs=full,
                    signature=network.registry.sign(sender, submit_digest(0, 1, full)),
                )
            )
        proof = CollectionProof(cluster_id=0, round_number=1, entries=tuple(entries))
        # Aggregate that drops new2 must be rejected even with a quorum of entries.
        assert not brd.collection_valid(proof, (join_request("new1", 0),))
        assert brd.collection_valid(proof, full)

    def test_collection_proof_rejects_forged_signatures(self):
        simulator, network, hosts = build_brd_cluster()
        brd = hosts[1].brd
        recs = (join_request("new1", 0),)
        entries = tuple(
            CollectionEntry(
                sender=sender,
                recs=recs,
                signature=network.registry.forge(sender, submit_digest(0, 1, recs)),
            )
            for sender in ("p0", "p1", "p2")
        )
        proof = CollectionProof(cluster_id=0, round_number=1, entries=entries)
        assert not brd.collection_valid(proof, recs)

    def test_canonical_recs_sorts_and_deduplicates(self):
        a = join_request("x", 0)
        b = leave_request("y", 0)
        assert canonical_recs([b, a, a]) == canonical_recs([a, b])
