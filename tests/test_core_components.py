"""Tests for core value types, configuration, state machine, and collection."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterSpec, HamavaConfig, SystemConfig, failure_threshold
from repro.core.messages import ReconfigAck, RequestJoin, RequestLeave
from repro.core.reconfiguration import ReconfigurationCollector, RequestTracker
from repro.core.statemachine import KeyValueStore
from repro.core.types import (
    OperationsBundle,
    Transaction,
    cluster_order,
    join_request,
    leave_request,
    make_transaction,
    merge_reconfigs,
)
from repro.errors import ConfigurationError
from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.network import Network, NetworkConfig
from repro.net.message import Envelope
from repro.sim.process import Process
from repro.sim.simulator import Simulator
from tests import helpers


class TestFailureThreshold:
    @pytest.mark.parametrize(
        "size,expected", [(1, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (13, 4)]
    )
    def test_paper_formula(self, size, expected):
        assert failure_threshold(size) == expected

    def test_heterogeneous_example_from_paper(self):
        # §II: clusters of 4 and 7 have thresholds 1 and 2 respectively.
        assert failure_threshold(4) == 1
        assert failure_threshold(7) == 2


class TestSystemConfig:
    def test_build_generates_unique_ids(self):
        config = SystemConfig.build([(4, "us-west1"), (7, "asia-south1")])
        assert config.total_replicas() == 11
        assert len(set(config.all_replicas())) == 11
        assert config.faults(0) == 1
        assert config.faults(1) == 2

    def test_cluster_of_lookup(self):
        config = SystemConfig.build([(3, "us-west1"), (3, "us-west1")])
        assert config.cluster_of("c1/r2") == 1
        with pytest.raises(ConfigurationError):
            config.cluster_of("ghost")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(clusters={0: ClusterSpec(0, "us-west1", [])}).validate()

    def test_duplicate_members_rejected(self):
        spec = ClusterSpec(0, "us-west1", ["a", "a"])
        with pytest.raises(ConfigurationError):
            spec.validate()

    def test_overlapping_clusters_rejected(self):
        config = SystemConfig(
            clusters={
                0: ClusterSpec(0, "us-west1", ["a", "b", "c"]),
                1: ClusterSpec(1, "us-west1", ["c", "d", "e"]),
            }
        )
        with pytest.raises(ConfigurationError):
            config.validate()

    def test_initial_view_is_independent_copy(self):
        config = SystemConfig.build([(3, "us-west1")])
        view = config.initial_view()
        view[0].add("intruder")
        assert "intruder" not in config.members(0)


class TestHamavaConfig:
    def test_with_engine_does_not_mutate_original(self):
        base = HamavaConfig()
        other = base.with_engine("bftsmart")
        assert base.engine == "hotstuff"
        assert other.engine == "bftsmart"

    def test_with_timeouts(self):
        config = HamavaConfig().with_timeouts(remote_timeout=3.0, instance_timeout=4.0, brd_timeout=5.0)
        assert config.remote_timeout == 3.0
        assert config.consensus.instance_timeout == 4.0
        assert config.brd_timeout == 5.0


class TestTransactionsAndBundles:
    def test_make_transaction_ids_are_unique(self):
        a = make_transaction("c", "r", "write", "k", "v")
        b = make_transaction("c", "r", "write", "k", "v")
        assert a.txn_id != b.txn_id

    def test_is_read(self):
        assert make_transaction("c", "r", "read", "k").is_read
        assert not make_transaction("c", "r", "write", "k", "v").is_read

    def test_merge_reconfigs_union_sorted(self):
        a = join_request("x", 0)
        b = leave_request("y", 0)
        merged = merge_reconfigs([(a,), (b, a)])
        assert merged == tuple(sorted({a, b}))

    def test_cluster_order_is_ascending(self):
        bundles = {2: OperationsBundle(2, 1), 0: OperationsBundle(0, 1), 1: OperationsBundle(1, 1)}
        assert cluster_order(bundles) == [0, 1, 2]

    def test_bundle_accounting(self):
        bundle = OperationsBundle(
            cluster_id=0,
            round_number=1,
            transactions=[make_transaction("c", "r", "write", "k", "v")],
            reconfigs=(join_request("x", 0),),
        )
        assert bundle.operation_count() == 2
        assert bundle.size_bytes() > 1024


class TestKeyValueStore:
    def test_write_then_read(self):
        store = KeyValueStore()
        store.apply(make_transaction("c", "r", "write", "k", "v1"))
        assert store.read("k") == "v1"
        assert store.applied == 1

    def test_read_returns_current_value(self):
        store = KeyValueStore()
        txn = make_transaction("c", "r", "read", "missing")
        assert store.apply(txn) is None

    def test_snapshot_restore_roundtrip(self):
        store = KeyValueStore()
        store.apply(make_transaction("c", "r", "write", "a", "1"))
        snapshot = store.snapshot()
        other = KeyValueStore()
        other.restore(snapshot)
        assert other.read("a") == "1"
        # Restoring is a copy, not an alias.
        store.apply(make_transaction("c", "r", "write", "a", "2"))
        assert other.read("a") == "1"

    def test_fingerprint_tracks_writes(self):
        store = KeyValueStore()
        assert store.fingerprint() == (0, 0)
        store.apply(make_transaction("c", "r", "write", "a", "1"))
        assert store.fingerprint() == (1, 1)


class CollectorHost(Process):
    def __init__(self, process_id, simulator, network, members):
        super().__init__(process_id, simulator)
        network.register(self, "us-west1")
        self.acks = []
        self.collector = ReconfigurationCollector(
            owner=process_id,
            cluster_id=0,
            network=network,
            members_fn=helpers.members_fn(members),
            round_fn=lambda: 1,
        )

    def on_message(self, sender, envelope):
        if isinstance(envelope.payload, ReconfigAck):
            self.acks.append(sender)
        else:
            self.collector.on_message(sender, envelope)


class TestReconfigurationCollector:
    def _setup(self):
        simulator = Simulator(seed=6)
        registry = KeyRegistry(seed=6)
        network = Network(
            simulator, LatencyModel(simulator.rng), registry, NetworkConfig(cpu_model=False)
        )
        members = ["p0", "p1", "p2", "p3"]
        hosts = [CollectorHost(m, simulator, network, members) for m in members]
        joiner = CollectorHost("newbie", simulator, network, members)
        return simulator, network, hosts, joiner

    def test_join_request_collected_and_acked(self):
        simulator, network, hosts, joiner = self._setup()
        message = RequestJoin(cluster_id=0, round_number=1, region="us-west1")
        for host in hosts:
            network.send("newbie", host.process_id, message,
                         network.registry.sign("newbie", message.digest()))
        simulator.run(until=1.0)
        for host in hosts:
            assert join_request("newbie", 0, "us-west1") in host.collector.current_recs()
        assert len(joiner.acks) == 4

    def test_leave_request_collected(self):
        simulator, network, hosts, _ = self._setup()
        message = RequestLeave(cluster_id=0, round_number=1)
        network.send("p3", "p0", message, network.registry.sign("p3", message.digest()))
        simulator.run(until=1.0)
        assert leave_request("p3", 0) in hosts[0].collector.current_recs()

    def test_wrong_cluster_ignored(self):
        simulator, network, hosts, _ = self._setup()
        message = RequestJoin(cluster_id=9, round_number=1)
        network.send("newbie", "p0", message, network.registry.sign("newbie", message.digest()))
        simulator.run(until=1.0)
        assert hosts[0].collector.pending_count() == 0

    def test_mark_applied_removes_and_blocks_recollection(self):
        simulator, network, hosts, _ = self._setup()
        request = join_request("newbie", 0)
        collector = hosts[0].collector
        collector.add(request)
        collector.mark_applied([request])
        assert collector.pending_count() == 0
        collector.add(request)
        assert collector.pending_count() == 0


class TestRequestTracker:
    def test_quorum_satisfaction(self):
        tracker = RequestTracker(lambda: 3)
        assert tracker.should_retry()
        tracker.record_ack("a")
        tracker.record_ack("b")
        assert not tracker.satisfied
        assert tracker.record_ack("c")
        assert not tracker.should_retry()

    def test_duplicate_acks_do_not_count_twice(self):
        tracker = RequestTracker(lambda: 2)
        tracker.record_ack("a")
        tracker.record_ack("a")
        assert not tracker.satisfied
        assert tracker.ack_count() == 1
