"""Tests for seeded RNG namespacing and determinism."""

from __future__ import annotations

from repro.sim.rng import SeededRng, stable_hash


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(5, "net")
        b = SeededRng(5, "net")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_namespaces_differ(self):
        a = SeededRng(5, "net")
        b = SeededRng(5, "workload")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_child_streams_are_independent(self):
        root = SeededRng(5)
        child_a = root.child("a")
        child_b = root.child("b")
        sequence_a = [child_a.random() for _ in range(5)]
        # Drawing from b must not perturb a fresh copy of a's stream.
        [child_b.random() for _ in range(100)]
        fresh_a = SeededRng(5).child("a")
        assert sequence_a == [fresh_a.random() for _ in range(5)]

    def test_uniform_bounds(self):
        rng = SeededRng(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value < 3.0

    def test_jitter_keeps_sign_and_scale(self):
        rng = SeededRng(2)
        for _ in range(100):
            value = rng.jitter(10.0, 0.1)
            assert 9.0 <= value <= 11.0
        assert rng.jitter(0.0, 0.5) == 0.0

    def test_sample_and_choice(self):
        rng = SeededRng(3)
        items = list(range(20))
        sample = rng.sample(items, 5)
        assert len(set(sample)) == 5
        assert rng.choice(items) in items


def test_stable_hash_is_deterministic():
    assert stable_hash(["a", "b"]) == stable_hash(["a", "b"])
    assert stable_hash(["a", "b"]) != stable_hash(["b", "a"])
