"""Setuptools entry point.

Packaging metadata lives here (rather than in ``pyproject.toml``'s
``[project]`` table) so that editable installs work with the pinned
setuptools in the offline evaluation environment, which predates PEP 660
editable-wheel support.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Hamava: fault-tolerant reconfigurable geo-replication on heterogeneous "
        "clusters (ICDE 2025) — Python reproduction"
    ),
    long_description=open("README.md", encoding="utf-8").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    license="Apache-2.0",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=[],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        "analysis": ["numpy"],
    },
)
