"""E8 (Fig. 8): impact of inter-cluster network latency during reconfiguration."""

from __future__ import annotations

from bench_helpers import BENCH_THREADS, run_once
from repro.harness import experiments


def test_e8_network_latency_during_reconfiguration(benchmark):
    rows = run_once(
        benchmark, experiments.run_e8, ("hotstuff",), 6.0, BENCH_THREADS
    )
    experiments.print_rows(rows, "E8: network latency during reconfiguration (Fig. 8)")
    series = sorted((row for row in rows if row["engine"] == "hotstuff"), key=lambda r: r["rtt_ms"])
    nearest, farthest = series[0], series[-1]
    # Fig. 8: as the second cluster moves farther away (52ms -> 219ms RTT),
    # throughput decreases and write latency increases; reconfigurations keep
    # being applied throughout.
    assert farthest["throughput"] < nearest["throughput"]
    assert farthest["latency_write"] > nearest["latency_write"]
    assert all(row["reconfigs_applied"] > 0 for row in series)
