"""E3 (Fig. 4b-4e): impact of cluster heterogeneity on performance."""

from __future__ import annotations

from bench_helpers import BENCH_DURATION, BENCH_THREADS, run_once
from repro.harness import experiments


def _run(engine: str):
    return experiments.run_e3(
        engines=(engine,),
        scales=(1, 2),
        duration=BENCH_DURATION,
        client_threads=BENCH_THREADS,
    )


def _check(rows):
    for scale in {row["scale"] for row in rows}:
        by_setup = {row["setup"]: row for row in rows if row["scale"] == scale}
        # Fig. 4b-4e: region-aligned heterogeneous clusters (setup 2) beat the
        # homogeneous split (setup 1), and splitting the large region further
        # (setup 3) is at least as good as setup 2.
        assert by_setup["setup2"]["throughput"] > by_setup["setup1"]["throughput"]
        assert by_setup["setup3"]["throughput"] >= by_setup["setup2"]["throughput"] * 0.9
        # Write latency comparison only when the homogeneous setup committed
        # writes inside the (short, reduced-scale) measurement window at all;
        # with BFT-SMaRt's all-to-all phases over a region-spanning cluster it
        # may not, which is itself the strongest form of the paper's point.
        if by_setup["setup1"]["latency_write"] > 0:
            assert by_setup["setup2"]["latency_write"] < by_setup["setup1"]["latency_write"]


def test_e3_heterogeneity_ava_hotstuff(benchmark):
    rows = run_once(benchmark, _run, "hotstuff")
    experiments.print_rows(rows, "E3: heterogeneity, AVA-HOTSTUFF (Fig. 4b/4c)")
    _check(rows)


def test_e3_heterogeneity_ava_bftsmart(benchmark):
    rows = run_once(benchmark, _run, "bftsmart")
    experiments.print_rows(rows, "E3: heterogeneity, AVA-BFTSMART (Fig. 4d/4e)")
    _check(rows)
