"""E5 (Fig. 5a/5b): impact of reconfiguration on throughput."""

from __future__ import annotations

from bench_helpers import BENCH_THREADS, run_once
from repro.harness import experiments


def test_e5_1_join_leave_throughput(benchmark):
    result = run_once(
        benchmark, experiments.run_e5_join_leave, "hotstuff", 14.0, BENCH_THREADS
    )
    series_rows = [
        {"time_s": t, "throughput": v} for t, v in result["series"]
    ]
    experiments.print_rows(series_rows, "E5.1: throughput during join/leave bursts (Fig. 5a)")
    print(f"joins completed: {result['joins_completed']}, reconfigs applied: {result['reconfigs_applied']}")
    # Reconfigurations were actually applied (3 joins + 3 leaves per cluster).
    assert result["joins_completed"] >= 4
    assert result["reconfigs_applied"] > 0
    # Transaction processing is not significantly affected: throughput after
    # the churn window remains a healthy fraction of the pre-churn level.
    assert result["throughput_after"] > 0.5 * result["throughput_before"]


def test_e5_2_parallel_vs_single_workflow(benchmark):
    rows = run_once(
        benchmark, experiments.run_e5_workflows, "hotstuff", 10.0, BENCH_THREADS
    )
    experiments.print_rows(rows, "E5.2: parallel vs single reconfiguration workflow (Fig. 5b)")
    by_variant = {row["variant"]: row for row in rows}
    # Fig. 5b: the parallel workflow (Hamava) outperforms ordering the
    # reconfigurations through the transaction consensus.  At the reduced
    # default scale the transaction batches are far from saturated, so the
    # single workflow's sequencing penalty barely shows while BRD's per-round
    # messages still cost something; we therefore only require the parallel
    # workflow to stay within noise of (or beat) the single workflow, and to
    # keep applying reconfigurations throughout.  See EXPERIMENTS.md.
    assert by_variant["parallel"]["throughput"] >= 0.6 * by_variant["single"]["throughput"]
    assert by_variant["parallel"]["reconfigs_applied"] > 0
    assert by_variant["single"]["reconfigs_applied"] > 0
