"""Importable helpers shared across the benchmark suite.

Mirrors ``tests/helpers.py``: benchmark modules import constants from this
uniquely named module instead of ``conftest.py``, so running tests and
benchmarks together never resolves the wrong ``conftest`` off ``sys.path``.

Every benchmark regenerates one table or figure of the paper.  The default
scale is reduced (fewer nodes, a few simulated seconds) so the whole suite
finishes in minutes; set ``REPRO_FULL_SCALE=1`` (and optionally
``REPRO_DURATION`` / ``REPRO_TOTAL_NODES``) to run at paper scale.
"""

from __future__ import annotations

import os

#: Reduced defaults so the full suite completes quickly.
BENCH_DURATION = float(os.environ.get("REPRO_DURATION", "1.5"))
BENCH_NODES = int(os.environ.get("REPRO_TOTAL_NODES", "36"))
BENCH_THREADS = int(os.environ.get("REPRO_THREADS", "12"))
BENCH_CLUSTER_COUNTS = (2, 3, 4, 6)


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


__all__ = [
    "BENCH_CLUSTER_COUNTS",
    "BENCH_DURATION",
    "BENCH_NODES",
    "BENCH_THREADS",
    "run_once",
]
