"""E2 (Fig. 4a): per-stage latency breakdown across 1/2/3 regions."""

from __future__ import annotations

from bench_helpers import BENCH_DURATION, run_once
from repro.harness import experiments


def test_e2_latency_breakdown(benchmark):
    rows = run_once(benchmark, experiments.run_e2, "hotstuff", max(BENCH_DURATION, 2.0))
    experiments.print_rows(rows, "E2: latency breakdown (Fig. 4a)")
    by_setup = {row["setup"]: row for row in rows}
    one, two, three = by_setup["1 region"], by_setup["2 regions"], by_setup["3 regions"]
    # Single region: intra-cluster replication dominates the round.
    assert one["intra_cluster_ms"] > one["inter_cluster_ms"]
    # Two and three regions: inter-cluster communication dominates and grows
    # as the farther region (US) is added, mirroring Table II RTTs.
    assert two["inter_cluster_ms"] > two["intra_cluster_ms"]
    assert three["inter_cluster_ms"] > two["inter_cluster_ms"]
    # Reads are served locally and stay far cheaper than writes everywhere.
    for row in rows:
        assert row["read_latency_ms"] < row["write_latency_ms"]
    # Mean wire link latency grows with the region spread and is not diluted
    # by 0 ms self-deliveries (excluded from the aggregate by construction).
    assert three["link_latency_ms"] > one["link_latency_ms"] > 0

