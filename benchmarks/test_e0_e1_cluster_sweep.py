"""E0/E1 (Fig. 3): throughput and latency vs number of clusters."""

from __future__ import annotations

from bench_helpers import BENCH_CLUSTER_COUNTS, BENCH_DURATION, BENCH_NODES, BENCH_THREADS, run_once
from repro.harness import experiments


def _sweep(multi_region: bool):
    return experiments.run_cluster_sweep(
        engines=("hotstuff", "bftsmart"),
        cluster_counts=BENCH_CLUSTER_COUNTS,
        total_nodes=BENCH_NODES,
        multi_region=multi_region,
        duration=BENCH_DURATION,
        client_threads=BENCH_THREADS,
    )


def _check_trend(rows, engine):
    series = [row for row in rows if row["engine"] == engine]
    series.sort(key=lambda row: row["clusters"])
    # Fig. 3 trend: more clusters => higher throughput and lower write latency.
    assert series[-1]["throughput"] > series[0]["throughput"]
    assert series[-1]["latency_write"] < series[0]["latency_write"]


def test_e0_multicluster_single_region(benchmark):
    rows = run_once(benchmark, _sweep, False)
    experiments.print_rows(rows, "E0: clusters sweep, single region (Fig. 3 left)")
    _check_trend(rows, "hotstuff")
    _check_trend(rows, "bftsmart")


def test_e1_multicluster_multi_region(benchmark):
    rows = run_once(benchmark, _sweep, True)
    experiments.print_rows(rows, "E1: clusters sweep, three regions (Fig. 3 right)")
    # Fig. 3 (right): throughput still rises with the number of clusters for
    # both engines.  The paper's latency decrease also holds there because
    # intra-cluster replication of 48-node clusters dominates; at the reduced
    # default scale the WAN exchange dominates instead, so we only require
    # throughput scaling here (full-scale runs recover the latency trend).
    for engine in ("hotstuff", "bftsmart"):
        series = sorted(
            (row for row in rows if row["engine"] == engine), key=lambda row: row["clusters"]
        )
        assert series[-1]["throughput"] > series[0]["throughput"]
    assert all(row["latency_write"] > 0 for row in rows)
