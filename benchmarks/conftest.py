"""Shared configuration for the benchmark suite (helpers in ``bench_helpers``).

Each benchmark prints the rows/series it measured, so running
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced numbers next
to the timing data pytest-benchmark records.
"""

from __future__ import annotations
