"""E7 (Fig. 7): impact of reconfiguration frequency on performance."""

from __future__ import annotations

from bench_helpers import BENCH_THREADS, run_once
from repro.harness import experiments


def test_e7_reconfiguration_frequency(benchmark):
    rows = run_once(
        benchmark, experiments.run_e7, ("hotstuff", "bftsmart"), 8.0, BENCH_THREADS
    )
    experiments.print_rows(rows, "E7: reconfiguration frequency (Fig. 7)")
    for engine in ("hotstuff", "bftsmart"):
        by_freq = {row["reconfig_frequency"]: row for row in rows if row["engine"] == engine}
        baseline = by_freq["none"]["throughput"]
        continuous = by_freq["continuous"]["throughput"]
        # Continuous churn costs some throughput, but the system stabilizes —
        # the paper reports a worst-case drop of roughly 10-15%; we allow a
        # generous bound to absorb simulator noise at reduced scale.
        assert continuous > 0.5 * baseline
        assert by_freq["continuous"]["reconfigs_applied"] > 0
