"""Chaos smoke: run the E9 adversity pack and gate on its assertions.

CI's ``chaos-smoke`` job runs every E9 preset (gray leader, clock skew,
flapping partition, region outage, congestion, RTT trace) at smoke scale
and fails if **any** pinned qualitative assertion — including each
scenario's serial-vs-sharded row parity — does not hold.  It then runs the
same fixed-seed determinism probe as the perf suite and, with
``--compare``, gates on the committed fingerprint: the adversity layer
must not perturb a run that schedules no adversity.

Timings are printed but never gate (shared-runner wall-clock noise).

Usage::

    python -m benchmarks.chaos_smoke [--quick] [--compare BENCH_perf.json]

    --quick        pin the pack to its tuned 6-second smoke durations,
                   ignoring REPRO_FULL / REPRO_DURATION scale overrides.
    --compare OLD  also require the determinism fingerprint (and wire/op
                   invariant) to match a committed perf report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from benchmarks.perf import ensure_importable

ensure_importable()

from benchmarks.perf import determinism  # noqa: E402

#: The tuned smoke duration every E9 preset's assertions were pinned at.
QUICK_DURATION = 6.0


def run_pack(duration):
    """Run the E9 pack; returns (rows, all_passed)."""
    from repro.harness.experiments import run_e9_all

    started = time.perf_counter()
    rows = run_e9_all(duration=duration)
    elapsed = time.perf_counter() - started
    ok = True
    for row in rows:
        verdict = "PASS" if row["passed"] else "FAIL"
        ok = ok and bool(row["passed"])
        print(f"[chaos] {row['experiment']:<24} {verdict}  {json.dumps(row['assertions'])}")
    print(f"[chaos] pack wall time: {elapsed:.1f}s (non-gating)")
    return rows, ok


def run_determinism_gate(compare_path):
    """Run the fixed-seed probe; returns True when every gate holds."""
    probe = determinism.run_probe()
    ok = True
    if not probe["repeat_identical"]:
        print("[chaos] determinism: GATE FAILED — same-seed reruns diverged")
        ok = False
    if not probe["sharded_parity_identical"]:
        print("[chaos] determinism: GATE FAILED — serial vs shards=2 rows differ")
        ok = False
    if compare_path:
        with open(compare_path, "r", encoding="utf-8") as handle:
            committed = json.load(handle).get("determinism", {})
        if committed.get("probe_version") != probe["probe_version"]:
            print(
                f"[chaos] determinism: probe version changed "
                f"({committed.get('probe_version')} -> {probe['probe_version']}), "
                "fingerprint comparison skipped"
            )
        elif committed.get("fingerprint") != probe["fingerprint"]:
            print(
                "[chaos] determinism: GATE FAILED — fingerprint drifted vs "
                f"{compare_path} ({committed.get('fingerprint')} -> {probe['fingerprint']})"
            )
            ok = False
        else:
            print("[chaos] determinism: fingerprint matches committed report")
            old_wire = committed.get("wire_messages_per_committed_op")
            if old_wire is not None:
                print(
                    f"[chaos] determinism: wire/op {old_wire:.4f} -> "
                    f"{probe['wire_messages_per_committed_op']:.4f}"
                )
    if ok:
        print("[chaos] determinism: ok")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="pin the tuned smoke durations (ignore REPRO_FULL/REPRO_DURATION)",
    )
    parser.add_argument(
        "--compare",
        metavar="OLD_JSON",
        default=None,
        help="gate the determinism fingerprint against a committed perf report",
    )
    args = parser.parse_args(argv)

    duration = QUICK_DURATION if args.quick else None
    _, pack_ok = run_pack(duration)
    probe_ok = run_determinism_gate(args.compare)
    if not pack_ok:
        print("[chaos] FAILED: at least one E9 assertion did not hold")
    if pack_ok and probe_ok:
        print("[chaos] all gates passed")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
