"""E6 (Fig. 6a/6b): AVA-HOTSTUFF vs GeoBFT across cluster counts."""

from __future__ import annotations

from bench_helpers import BENCH_CLUSTER_COUNTS, BENCH_DURATION, BENCH_NODES, BENCH_THREADS, run_once
from repro.harness import experiments


def _run(multi_region: bool):
    return experiments.run_e6(
        cluster_counts=BENCH_CLUSTER_COUNTS,
        total_nodes=BENCH_NODES,
        multi_region=multi_region,
        duration=BENCH_DURATION,
        client_threads=BENCH_THREADS,
    )


def _check_single_region(rows):
    rows = sorted(rows, key=lambda row: row["clusters"])
    few, many = rows[0], rows[-1]
    # Fig. 6a: the paper shows GeoBFT's deep ordering pipeline ahead at few,
    # large clusters, with the two systems converging as clusters shrink.
    # Since the delivery pipeline gained a true 0 ms loop-back, our simulated
    # AVA-HOTSTUFF is ahead at few clusters too: Hamava does not pipeline
    # local ordering, so the old ~0.65 ms self-delivery hops (leader handling
    # its own proposal, BRD aggregate, own shares) sat on its round's
    # critical path and inflated its latency relative to GeoBFT, whose
    # pipeline hid them.  We keep the *relative trend* assertions (GeoBFT
    # gains ground as clusters grow, both systems within a band and scaling)
    # and document the level deviation, as E6.2 already does for the
    # multi-region sweep.
    # The band widened from 0.7 after the quiet-round PR: eliding the empty
    # reconfiguration exchange shortens Hamava's rounds, and GeoBFT — which
    # runs no reconfiguration workflow at all — has nothing to elide, so
    # AVA-HOTSTUFF pulls further ahead at few clusters (same level deviation
    # as above, same preserved trends below).
    assert few["geobft_throughput"] > few["ava_hotstuff_throughput"] * 0.6
    ratio_few = few["geobft_throughput"] / max(few["ava_hotstuff_throughput"], 1e-9)
    ratio_many = many["geobft_throughput"] / max(many["ava_hotstuff_throughput"], 1e-9)
    # GeoBFT gains relative ground as the cluster count grows (pipelining
    # matters less, its edge at scale shows), and the two stay in one band.
    assert ratio_many > ratio_few
    assert ratio_many <= ratio_few * 1.5
    # Both systems scale with the number of clusters.
    assert many["ava_hotstuff_throughput"] > few["ava_hotstuff_throughput"]


def _check_multi_region(rows):
    rows = sorted(rows, key=lambda row: row["clusters"])
    few, many = rows[0], rows[-1]
    # Fig. 6b: both systems keep scaling with the number of clusters when the
    # clusters are spread over three regions.  In our simulator AVA-HOTSTUFF
    # is ahead across the sweep here (the paper shows GeoBFT ahead at few
    # clusters); see the deviation note in _check_single_region above.
    assert many["ava_hotstuff_throughput"] > few["ava_hotstuff_throughput"]
    assert many["geobft_throughput"] > few["geobft_throughput"]
    assert all(row["geobft_throughput"] > 0 for row in rows)


def test_e6_1_same_region(benchmark):
    rows = run_once(benchmark, _run, False)
    experiments.print_rows(rows, "E6.1: AVA-HOTSTUFF vs GeoBFT, single region (Fig. 6a)")
    _check_single_region(rows)


def test_e6_2_multi_region(benchmark):
    rows = run_once(benchmark, _run, True)
    experiments.print_rows(rows, "E6.2: AVA-HOTSTUFF vs GeoBFT, multiple regions (Fig. 6b)")
    _check_multi_region(rows)
