"""Table I (protocol complexity) and Table II (inter-region RTT)."""

from __future__ import annotations

from bench_helpers import run_once
from repro.harness import experiments


def test_table1_complexity(benchmark):
    rows = run_once(benchmark, experiments.run_table1, 4, 24)
    experiments.print_rows(rows, "Table I: best-case complexity (z=4, n=24)")
    by_name = {row["protocol"]: row for row in rows}
    # Clustered protocols decide z values per exchange; classical ones decide 1.
    assert by_name["Ava-HotStuff"]["decisions"] == 4
    assert by_name["PBFT"]["decisions"] == 1
    # HotStuff's local complexity is linear in n, BFT-SMaRt's quadratic.
    assert by_name["Ava-BftSmart"]["local"] > by_name["Ava-HotStuff"]["local"]


def test_table2_latency_matrix(benchmark):
    rows = run_once(benchmark, experiments.run_table2)
    experiments.print_rows(rows, "Table II: inter-region RTT (ms)")
    by_region = {row["region"]: row for row in rows}
    assert by_region["US"]["EU"] == 148.0
    assert by_region["US"]["Asia"] == 214.0
    assert by_region["EU"]["Asia"] == 134.0
