"""E4 (Fig. 4f-4h): throughput over time under crash and Byzantine failures."""

from __future__ import annotations

from bench_helpers import BENCH_THREADS, run_once
from repro.harness import experiments

#: Short failure timeline: fault injected at t=4s, watch recovery until t=12s.
DURATION = 12.0
FAULT_TIME = 4.0


def _series_stats(rows):
    before = [r["throughput"] for r in rows if 1.0 <= r["time_s"] < FAULT_TIME]
    dip = [r["throughput"] for r in rows if FAULT_TIME <= r["time_s"] < FAULT_TIME + 2.0]
    after = [r["throughput"] for r in rows if r["time_s"] >= DURATION - 3.0]
    mean = lambda xs: sum(xs) / len(xs) if xs else 0.0
    return mean(before), mean(dip), mean(after)


def test_e4_1_non_leader_failures(benchmark):
    rows = run_once(
        benchmark, experiments.run_e4, "non_leader", "hotstuff", DURATION, FAULT_TIME, BENCH_THREADS
    )
    experiments.print_rows(rows, "E4.1: up to f non-leader crashes (Fig. 4f)")
    before, _, after = _series_stats(rows)
    # The system tolerates up to f non-leader crashes and keeps processing.
    assert after > 0.3 * before


def test_e4_2_leader_failure(benchmark):
    rows = run_once(
        benchmark, experiments.run_e4, "leader", "hotstuff", DURATION, FAULT_TIME, BENCH_THREADS
    )
    experiments.print_rows(rows, "E4.2: leader crash (Fig. 4g)")
    before, dip, after = _series_stats(rows)
    # Throughput dips while the leader-change timeout runs, then recovers.
    assert dip < before
    assert after > 0.5 * before


def test_e4_3_byzantine_leader(benchmark):
    rows = run_once(
        benchmark, experiments.run_e4, "byzantine_leader", "hotstuff", DURATION, FAULT_TIME,
        BENCH_THREADS,
    )
    experiments.print_rows(rows, "E4.3: Byzantine leader, remote leader change (Fig. 4h)")
    before, dip, after = _series_stats(rows)
    assert dip < before
    # After the remote leader change replaces the silent leader, throughput
    # comes back up to (close to) the pre-fault level.
    assert after > 0.6 * before
