"""The pre-optimisation perf baseline every run is compared against.

Recorded once, on the seed hot path (commit 806ae8f: dataclass events
compared field-by-field in the heap, per-message closures, uncached
``repr``-based digests, no heap compaction) with::

    PYTHONPATH=src python -m benchmarks.perf --record-baseline

The ``replica_*`` and ``workload_*`` entries were introduced together with
their suites one PR later (commit 789fe45 state: post kernel/network
overhaul, pre protocol/workload optimisation), so their baselines capture
the code as it stood immediately before the optimisations they measure.

Numbers are machine-dependent; the *speedups* reported next to them are
not (same machine, same process, same workload sizes).  Re-record only if
the workload definitions in this package change, and say so in the PR.
"""

from __future__ import annotations

from typing import Dict

#: Best-of-N results of the seed implementation (filled by --record-baseline).
BASELINE: Dict[str, Dict[str, float]] = {
    "kernel_events": {
        "events": 200000.0,
        "events_per_sec": 159424.02624601327,
        "wall_s": 1.254516051999417
    },
    "kernel_timer_churn": {
        "resets": 99968.0,
        "resets_per_sec": 221816.6402069912,
        "wall_s": 0.4506785420007873
    },
    "macro_e0": {
        "events": 83361.0,
        "events_per_sec": 33294.551730094914,
        "operations": 8216.0,
        # Derived from the recorded operations/wall_s of the same baseline
        # run, added when the macro headline switched to useful work per
        # wall second (the fused pipeline halved events per message, so
        # events_per_sec stopped measuring progress).
        "ops_per_sec": 3281.486931966312,
        "sim_duration_s": 3.0,
        "wall_s": 2.503742975000023
    },
    "network_multicast": {
        "messages": 21600.0,
        "messages_per_sec": 88369.27102936718,
        "wall_s": 0.24442885799999203
    },
    "replica_bundle_accounting": {
        "messages": 2000.0,
        "messages_per_sec": 2038.8059224247481,
        "wall_s": 0.9809663479991286
    },
    "replica_view_churn": {
        "lookups": 20000.0,
        "lookups_per_sec": 642485.4627187353,
        "wall_s": 0.03112910900017596
    },
    "workload_ycsb": {
        "ops": 200000.0,
        "ops_per_sec": 1464953.496329031,
        "wall_s": 0.13652310500037856
    },
    "workload_zipf": {
        "draws": 1000000.0,
        "draws_per_sec": 2181791.6401317474,
        "wall_s": 0.45833890899848484
    }
}

#: The headline metric of each workload, used for speedup reporting.
HEADLINE_METRICS: Dict[str, str] = {
    "kernel_events": "events_per_sec",
    "kernel_timer_churn": "resets_per_sec",
    "network_multicast": "messages_per_sec",
    "macro_e0": "ops_per_sec",
    # Introduced with the open-loop population subsystem; no pre-optimisation
    # baseline exists (the model is new), so only the absolute rate prints.
    "population_open_loop": "ops_per_sec",
    # Introduced with the cluster-sharded kernel; the headline is the
    # wall-clock speedup of 4 forked shard workers over serial on the same
    # spec.  Non-gating and host-dependent — the result row carries
    # ``host_cores`` because the speedup is bounded by physical cores.
    "sharded_sweep": "speedup_vs_serial",
    "replica_bundle_accounting": "messages_per_sec",
    "replica_view_churn": "lookups_per_sec",
    "workload_zipf": "draws_per_sec",
    "workload_ycsb": "ops_per_sec",
}


def speedups(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Headline-metric ratios ``current / baseline`` per workload."""
    ratios: Dict[str, float] = {}
    for name, metric in HEADLINE_METRICS.items():
        base = BASELINE.get(name, {}).get(metric)
        current = results.get(name, {}).get(metric)
        if base and current:
            ratios[name] = current / base
    return ratios


__all__ = ["BASELINE", "HEADLINE_METRICS", "speedups"]
