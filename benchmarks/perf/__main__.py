"""CLI entry point: ``python -m benchmarks.perf``.

Runs the kernel, network, and macro benchmarks and writes ``BENCH_perf.json``
at the repo root (override with ``--output``).  The file carries both the
fresh results and the fixed pre-optimisation baseline, plus the headline
speedup ratios, so the perf trajectory is a single self-describing artifact.

Every run also executes the fixed-seed determinism probe
(:mod:`benchmarks.perf.determinism`); its fingerprint lands in the report.
``--compare`` exits non-zero **only** on a determinism mismatch, a
serial-vs-sharded parity break, or a harness crash — timing ratios
(including the sharded-speedup row) are printed but never gate, per the
host-variance caveat.  This is what CI's ``perf-smoke`` job runs.

Flags:
    --quick        ~10x smaller workloads (CI smoke); the probe is unaffected.
    --only NAMES   comma-separated subset:
                   kernel,network,replica,workload,macro,population,sharded.
    --ab PAIR      paired same-window A/B comparison (interleaved arms,
                   mean ± spread); see benchmarks/perf/ab.py.
    --output PATH  where to write the JSON (default: <repo>/BENCH_perf.json).
    --compare OLD  after running, print per-bench speedups vs a prior
                   BENCH_perf.json (the perf trajectory in one command) and
                   gate on its determinism fingerprint.
    --against NEW  with --compare: skip running and diff two result files.
    --record-baseline
                   also rewrite ``baseline.py`` with these results (use only
                   when intentionally re-anchoring the baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys

from benchmarks.perf import REPO_ROOT, ensure_importable

ensure_importable()

from benchmarks.perf import (  # noqa: E402
    ab,
    baseline,
    determinism,
    kernel_bench,
    macro_bench,
    network_bench,
    population_bench,
    replica_bench,
    sharded_bench,
    workload_bench,
)

_SUITES = {
    "kernel": kernel_bench.run,
    "network": network_bench.run,
    "replica": replica_bench.run,
    "workload": workload_bench.run,
    "macro": macro_bench.run,
    "population": population_bench.run,
    "sharded": sharded_bench.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf", description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workloads (CI smoke)")
    parser.add_argument(
        "--only", default="", help=f"comma-separated subset of: {','.join(_SUITES)}"
    )
    parser.add_argument("--output", default=os.path.join(REPO_ROOT, "BENCH_perf.json"))
    parser.add_argument("--record-baseline", action="store_true")
    parser.add_argument(
        "--compare",
        default="",
        metavar="OLD_JSON",
        help="after running, print per-bench speedups vs a prior BENCH_perf.json",
    )
    parser.add_argument(
        "--against",
        default="",
        metavar="NEW_JSON",
        help="with --compare: skip running and diff this results file against OLD_JSON",
    )
    parser.add_argument(
        "--ab",
        default="",
        metavar="PAIR",
        help="run a paired same-window A/B comparison (interleaved arms, "
             f"mean ± spread) instead of the suites; one of {','.join(ab.PAIRS)} or 'all'",
    )
    args = parser.parse_args(argv)

    if args.ab:
        names = list(ab.PAIRS) if args.ab == "all" else [args.ab]
        unknown = sorted(set(names) - set(ab.PAIRS))
        if unknown:
            parser.error(f"unknown A/B pair(s) {unknown}; choose from {sorted(ab.PAIRS)} or 'all'")
        duration = 1.0 if args.quick else 2.0
        for name in names:
            print(f"[perf] running A/B pair {name}{' (quick)' if args.quick else ''}...", flush=True)
            for line in ab.format_report(ab.run_pair(name, duration=duration)):
                print(line)
        return 0

    if args.against and not args.compare:
        parser.error("--against requires --compare")
    if args.against:
        with open(args.against, "r", encoding="utf-8") as handle:
            new_report = json.load(handle)
        return _print_comparison(args.compare, new_report)

    chosen = [name.strip() for name in args.only.split(",") if name.strip()] or list(_SUITES)
    unknown = sorted(set(chosen) - set(_SUITES))
    if unknown:
        parser.error(f"unknown suite(s) {unknown}; choose from {sorted(_SUITES)}")
    if args.record_baseline and (args.quick or set(chosen) != set(_SUITES)):
        # A partial or shrunken run must never re-anchor the reference: it
        # would silently delete the other suites' baselines or record them
        # at the wrong workload scale.
        parser.error("--record-baseline requires a full-scale run of every suite "
                     "(no --quick, no --only)")

    results = {}
    for name in chosen:
        print(f"[perf] running {name} benchmarks{' (quick)' if args.quick else ''}...", flush=True)
        results.update(_SUITES[name](quick=args.quick))

    # The determinism probe runs regardless of --quick/--only: it is cheap,
    # shape-independent of the workload scale, and the only thing the CI
    # perf-smoke job gates on (timings stay informational).
    print("[perf] running determinism probe...", flush=True)
    probe = determinism.run_probe()
    report = {
        "schema": 2,
        "suite": "repro-perf",
        "quick": args.quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "results": results,
        "determinism": probe,
        "baseline": baseline.BASELINE,
        "headline_metrics": baseline.HEADLINE_METRICS,
        "speedup_vs_baseline": baseline.speedups(results),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[perf] wrote {args.output}")
    for name, metrics in results.items():
        headline = baseline.HEADLINE_METRICS.get(name)
        value = metrics.get(headline, 0.0) if headline else 0.0
        ratio = report["speedup_vs_baseline"].get(name)
        suffix = f"  ({ratio:.2f}x vs baseline)" if ratio else ""
        print(f"[perf]   {name}: {value:,.0f} {headline}{suffix}")

    if not probe["repeat_identical"] or not probe.get("chained_repeat_identical", True):
        print("[perf] DETERMINISM FAILURE: two same-seed probe runs disagreed "
              "within one process")
        return 1
    if not probe.get("sharded_parity_identical", True) or not probe.get(
        "chained_sharded_parity_identical", True
    ):
        print("[perf] SHARDED PARITY FAILURE: the probe scenario produced "
              "different results serially and at shards=2 (the sharded kernel "
              "must be a pure execution-strategy knob)")
        return 1
    if not probe.get("chained_reduces_wire", True):
        print("[perf] CHAINED WIRE FAILURE: hotstuff_chained committed the probe "
              "workload with MORE wire messages per operation than basic "
              "hotstuff — the pipelined engine's headline invariant")
        return 1
    if args.record_baseline:
        _rewrite_baseline(results)
        print("[perf] baseline.py re-anchored to these results")
    if args.compare:
        return _print_comparison(args.compare, report)
    return 0


def _headline_value(entry: dict, metric: str):
    """Read a headline metric, deriving it for reports that predate it.

    ``macro_e0`` switched its headline from ``events_per_sec`` to
    ``ops_per_sec`` when the fused pipeline made event volume incomparable;
    old reports still carry ``operations`` and ``wall_s``, so the rate is
    reconstructible.
    """
    value = entry.get(metric)
    if value:
        return value
    if metric == "ops_per_sec" and entry.get("operations") and entry.get("wall_s"):
        return entry["operations"] / entry["wall_s"]
    return None


def _print_comparison(old_path: str, new_report: dict) -> int:
    """Print per-bench headline speedups of ``new_report`` vs an old report.

    This is the one-command perf trajectory across PRs::

        python -m benchmarks.perf --compare old/BENCH_perf.json

    Gating: returns non-zero **only** when the two reports' determinism
    fingerprints disagree — same-seed simulation behaviour drifted without a
    sanctioned golden re-pin.  Timing ratios are always informational (the
    ``<-- REGRESSION`` flag marks crash-grade slowdowns for humans): shared
    CI runners swing far too much to gate on wall-clock, per the
    host-variance caveat in the README.
    """
    with open(old_path, "r", encoding="utf-8") as handle:
        old_report = json.load(handle)
    old_results = old_report.get("results", {})
    new_results = new_report.get("results", {})
    if old_report.get("quick") != new_report.get("quick"):
        print(
            "[perf][compare] WARNING: quick-mode mismatch "
            f"(old quick={old_report.get('quick')}, new quick={new_report.get('quick')}); "
            "headline metrics are rates, so ratios remain indicative only"
        )
    print(f"[perf] comparison vs {old_path}:")
    for name in sorted(set(old_results) | set(new_results)):
        if name not in old_results or name not in new_results:
            status = "only in new" if name in new_results else "only in old"
            print(f"[perf]   {name}: ({status})")
            continue
        # The reports are self-describing; fall back to this checkout's
        # registry only for reports written before headline_metrics existed.
        metric = (
            new_report.get("headline_metrics", {}).get(name)
            or old_report.get("headline_metrics", {}).get(name)
            or baseline.HEADLINE_METRICS.get(name)
        )
        old_value = _headline_value(old_results[name], metric) if metric else None
        new_value = _headline_value(new_results[name], metric) if metric else None
        if not old_value or not new_value:
            print(f"[perf]   {name}: (no shared headline metric)")
            continue
        ratio = new_value / old_value
        flag = "  <-- REGRESSION (non-gating)" if ratio < 0.5 else ""
        print(f"[perf]   {name}: {old_value:,.0f} -> {new_value:,.0f} {metric}  ({ratio:.2f}x){flag}")
    old_probe = old_report.get("determinism")
    new_probe = new_report.get("determinism")
    if new_probe is not None and not (
        new_probe.get("repeat_identical", True)
        and new_probe.get("chained_repeat_identical", True)
    ):
        print("[perf][compare] DETERMINISM FAILURE: the new report's probe was "
              "not repeatable")
        return 1
    if new_probe is not None and not (
        new_probe.get("sharded_parity_identical", True)
        and new_probe.get("chained_sharded_parity_identical", True)
    ):
        print("[perf][compare] SHARDED PARITY FAILURE: the new report's probe "
              "diverged between serial and shards=2 execution (gating)")
        return 1
    if new_probe is not None and not new_probe.get("chained_reduces_wire", True):
        print("[perf][compare] CHAINED WIRE FAILURE: hotstuff_chained spent more "
              "wire messages per committed op than basic hotstuff (gating)")
        return 1
    if old_probe is None or new_probe is None:
        print("[perf][compare] determinism: no fingerprint on one side "
              "(pre-probe report); nothing to gate on")
        return 0
    if old_probe.get("probe_version") != new_probe.get("probe_version"):
        print("[perf][compare] determinism: probe versions differ "
              f"({old_probe.get('probe_version')} vs {new_probe.get('probe_version')}); "
              "re-pin the committed report")
        return 0
    # Wire messages per committed operation: deterministic per seed, so —
    # unlike the timing rates — it gates.  Checked *before* the fingerprint:
    # any wire/op change also changes the fingerprint, and a regression
    # should fail with this targeted diagnosis rather than the generic
    # drift message (which a sanctioned re-pin would clear without anyone
    # noticing the protocol got chattier).  The 2% head-room only absorbs
    # float noise.
    for key, label in (
        ("wire_messages_per_committed_op", "wire/op"),
        ("chained_wire_messages_per_committed_op", "chained wire/op"),
    ):
        old_ratio = old_probe.get(key)
        new_ratio = new_probe.get(key)
        if old_ratio is None or new_ratio is None:
            continue  # older report predates this probe key; nothing to gate
        if new_ratio > old_ratio * 1.02 or (old_ratio > 0.0 and new_ratio == 0.0):
            print(f"[perf][compare] {label.upper()} REGRESSION: "
                  f"{old_ratio:.4f} -> {new_ratio:.4f} wire messages per committed "
                  "operation (gating; see the quiet-round invariant in "
                  "benchmarks/perf/macro_bench.py)")
            return 1
        print(f"[perf][compare] {label} invariant: {old_ratio:.4f} -> {new_ratio:.4f} (ok)")
    for key in ("fingerprint", "chained_fingerprint"):
        if old_probe.get(key) != new_probe.get(key):
            print("[perf][compare] DETERMINISM MISMATCH: fixed-seed behaviour drifted "
                  f"({key}: {old_probe.get(key)} -> {new_probe.get(key)}). "
                  "If this PR deliberately changes simulated semantics, re-pin the "
                  "goldens (python -m tests.repin_goldens) and regenerate "
                  "BENCH_perf.json; otherwise this is a bug.")
            return 1
    print("[perf][compare] determinism: fingerprints match")
    return 0


def _rewrite_baseline(results) -> None:
    """Rewrite the ``BASELINE = {...}`` block of baseline.py in place."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline.py")
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    rendered = json.dumps(results, indent=4, sort_keys=True)
    start = text.index("BASELINE: Dict[str, Dict[str, float]] = ")
    end = text.index("\n\n", start)
    text = (
        text[:start]
        + "BASELINE: Dict[str, Dict[str, float]] = "
        + rendered
        + text[end:]
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


if __name__ == "__main__":
    sys.exit(main())
