"""Microbenchmarks for the client-side workload generators.

The YCSB key chooser shows up in macro profiles: every client operation
draws a Zipfian key, so at high thread counts the generator is on the
closed-loop critical path.  Two workloads:

* ``zipf_draws`` — raw :meth:`ZipfianGenerator.next` throughput over a
  large key space.
* ``ycsb_ops`` — full :meth:`YcsbWorkload.next_operation` throughput
  (key draw + read/write choice + value formatting), the exact per-op cost
  a :class:`~repro.workload.clients.WorkloadClient` thread pays.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.sim.rng import SeededRng
from repro.workload.ycsb import YcsbConfig, YcsbWorkload
from repro.workload.zipf import ZipfianGenerator


def bench_zipf_draws(
    draws: int = 1_000_000, items: int = 100_000, theta: float = 0.99, repeats: int = 3
) -> Dict[str, float]:
    """Draw ``draws`` keys from a ``items``-key Zipfian distribution."""
    best = float("inf")
    for _ in range(repeats):
        generator = ZipfianGenerator(items, theta, SeededRng(33, "zipf-bench"))
        next_draw = generator.next
        started = time.perf_counter()
        for _ in range(draws):
            next_draw()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {"draws": float(draws), "wall_s": best, "draws_per_sec": draws / best}


def bench_ycsb_ops(draws: int = 200_000, repeats: int = 3) -> Dict[str, float]:
    """Generate ``draws`` full YCSB operations (op choice + key + value)."""
    best = float("inf")
    for _ in range(repeats):
        workload = YcsbWorkload(YcsbConfig(), SeededRng(34, "ycsb-bench"))
        next_operation = workload.next_operation
        started = time.perf_counter()
        for _ in range(draws):
            next_operation()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {"ops": float(draws), "wall_s": best, "ops_per_sec": draws / best}


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run both workload benches; ``quick`` shrinks them for CI smoke runs."""
    scale = 10 if quick else 1
    return {
        "workload_zipf": bench_zipf_draws(draws=1_000_000 // scale),
        "workload_ycsb": bench_ycsb_ops(draws=200_000 // scale),
    }


__all__ = ["bench_zipf_draws", "bench_ycsb_ops", "run"]
