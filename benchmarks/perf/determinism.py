"""Fixed-seed determinism probe for the perf suite.

Runs a small pinned scenario twice in-process and fingerprints the result.
The fingerprint covers the full :class:`~repro.harness.runner.ResultRow`
JSON (metrics, network counters, labels) plus the kernel event count, so
*any* change to simulated behaviour — timing, ordering, delivery
discipline — changes it.

The probe also runs the same scenario once more with ``shards=2`` through
the in-process conservative-parallel coordinator and compares byte-for-byte
against the serial payload: the sharded kernel is an execution-strategy
knob, never a semantics knob, and CI's perf-smoke job gates on that parity
the same way it gates on repeatability.

Since v4 the probe runs the whole battery a second time with the
``hotstuff_chained`` engine: its own fingerprint, repeatability and sharded
parity verdicts, its own wire/op invariant — and the headline claim of the
chained engine, that it commits the same workload with *fewer* wire messages
per operation than basic HotStuff, becomes a gated boolean.

The probe is deliberately independent of ``--quick``: it always runs the
same shape, so a quick CI run can be compared against a committed full run.
Timing comparisons between perf reports stay non-gating (shared-runner
noise); the determinism fingerprints and the parity verdicts are the
things the perf-smoke job *fails* on, because a mismatch means behaviour
drifted without a sanctioned golden re-pin (see ``tests/repin_goldens.py``).
"""

from __future__ import annotations

import hashlib
from typing import Dict

#: Bump when the probe scenario itself changes, so fingerprint mismatches
#: caused by probe redefinition are distinguishable from behaviour drift.
#: v2: fingerprint payload gained ``operations``; the probe now reports the
#: wire-messages-per-committed-op invariant the compare step gates on.
#: v3: cluster-sharded kernel — per-sender latency jitter streams and
#: owner-routed cross-cluster mailboxes changed same-seed schedules
#: (sanctioned re-pin); the probe now also gates serial-vs-sharded parity.
#: v4: chained HotStuff engine — the probe battery now runs a second,
#: ``hotstuff_chained`` pass (fingerprint, repeatability, sharded parity,
#: wire/op) and gates chained-beats-basic on wire/op; the basic pass was
#: also re-pinned for the receiver-side LocalShare CPU charging fix.
PROBE_VERSION = 4


def _probe_spec(engine: str = "hotstuff", shards: int = 1):
    from repro.harness.builder import Scenario

    builder = (
        Scenario("determinism-probe")
        .clusters(4, 4)
        .engine(engine)
        .threads(4)
        .duration(0.75, warmup=0.1)
        .seeds(7)
    )
    if shards > 1:
        builder = builder.shards(shards)
    return builder.spec()


def _engine_battery(engine: str) -> Dict[str, object]:
    """Two serial runs plus one 2-shard run of one engine's probe scenario."""
    import json

    def one_run(shards: int = 1) -> str:
        spec = _probe_spec(engine=engine, shards=shards)
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        return json.dumps(
            {
                "summary": metrics.summary(),
                "network": deployment.network.stats.snapshot(),
                "events": deployment.kernel.events_processed,
                "operations": metrics.committed_count(),
            },
            sort_keys=True,
        )

    def without_events(blob: str) -> str:
        # The serial path processes its mailbox flushes as events; the
        # sharded coordinator drains outboxes between windows instead, so
        # the raw event count differs by design.  Everything observable —
        # metrics, network counters, operations — must still match exactly.
        data = json.loads(blob)
        data.pop("events", None)
        return json.dumps(data, sort_keys=True)

    first = one_run()
    second = one_run()
    sharded = one_run(shards=2)
    payload = f"v{PROBE_VERSION}|{engine}|{first}".encode("utf-8")
    data = json.loads(first)
    operations = data["operations"]
    wire = data["network"]["messages_sent"]
    return {
        "events": data["events"],
        "wire_messages_per_committed_op": wire / operations if operations else 0.0,
        "fingerprint": hashlib.sha256(payload).hexdigest(),
        "repeat_identical": first == second,
        # Serial vs 2-shard coordinator, same seed: must be byte-identical.
        "sharded_parity_identical": without_events(first) == without_events(sharded),
    }


def run_probe() -> Dict[str, object]:
    """Run both engine batteries; fingerprints, verdicts, invariants."""
    basic = _engine_battery("hotstuff")
    chained = _engine_battery("hotstuff_chained")
    return {
        "probe_version": PROBE_VERSION,
        "scenario": "determinism-probe (4+4, 0.75s, seed 7; hotstuff + chained)",
        "events": basic["events"],
        # Deterministic protocol-efficiency invariant (see macro_bench):
        # gated by ``--compare`` so a quiet-round regression fails fast even
        # though the probe's duration differs from the macro run's.
        "wire_messages_per_committed_op": basic["wire_messages_per_committed_op"],
        "fingerprint": basic["fingerprint"],
        "repeat_identical": basic["repeat_identical"],
        "sharded_parity_identical": basic["sharded_parity_identical"],
        "chained_events": chained["events"],
        "chained_wire_messages_per_committed_op": chained[
            "wire_messages_per_committed_op"
        ],
        "chained_fingerprint": chained["fingerprint"],
        "chained_repeat_identical": chained["repeat_identical"],
        "chained_sharded_parity_identical": chained["sharded_parity_identical"],
        # The chained engine's reason to exist, as a gated invariant.
        "chained_reduces_wire": (
            chained["wire_messages_per_committed_op"]
            < basic["wire_messages_per_committed_op"]
        ),
    }


__all__ = ["PROBE_VERSION", "run_probe"]
