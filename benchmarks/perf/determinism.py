"""Fixed-seed determinism probe for the perf suite.

Runs a small pinned scenario twice in-process and fingerprints the result.
The fingerprint covers the full :class:`~repro.harness.runner.ResultRow`
JSON (metrics, network counters, labels) plus the kernel event count, so
*any* change to simulated behaviour — timing, ordering, delivery
discipline — changes it.

The probe is deliberately independent of ``--quick``: it always runs the
same shape, so a quick CI run can be compared against a committed full run.
Timing comparisons between perf reports stay non-gating (shared-runner
noise); the determinism fingerprint is the one thing the perf-smoke job
*fails* on, because a mismatch means behaviour drifted without a sanctioned
golden re-pin (see ``tests/repin_goldens.py``).
"""

from __future__ import annotations

import hashlib
from typing import Dict

#: Bump when the probe scenario itself changes, so fingerprint mismatches
#: caused by probe redefinition are distinguishable from behaviour drift.
#: v2: fingerprint payload gained ``operations``; the probe now reports the
#: wire-messages-per-committed-op invariant the compare step gates on.
PROBE_VERSION = 2


def _probe_spec():
    from repro.harness.builder import Scenario

    return (
        Scenario("determinism-probe")
        .clusters(4, 4)
        .engine("hotstuff")
        .threads(4)
        .duration(0.75, warmup=0.1)
        .seeds(7)
        .spec()
    )


def run_probe() -> Dict[str, object]:
    """Run the probe twice; return fingerprint plus a repeatability verdict."""
    import json

    def one_run() -> str:
        spec = _probe_spec()
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        return json.dumps(
            {
                "summary": metrics.summary(),
                "network": deployment.network.stats.snapshot(),
                "events": deployment.simulator.events_processed,
                "operations": metrics.committed_count(),
            },
            sort_keys=True,
        )

    first = one_run()
    second = one_run()
    payload = f"v{PROBE_VERSION}|{first}".encode("utf-8")
    data = json.loads(first)
    operations = data["operations"]
    wire = data["network"]["messages_sent"]
    return {
        "probe_version": PROBE_VERSION,
        "scenario": "determinism-probe (4+4 hotstuff, 0.75s, seed 7)",
        "events": data["events"],
        # Deterministic protocol-efficiency invariant (see macro_bench):
        # gated by ``--compare`` so a quiet-round regression fails fast even
        # though the probe's duration differs from the macro run's.
        "wire_messages_per_committed_op": wire / operations if operations else 0.0,
        "fingerprint": hashlib.sha256(payload).hexdigest(),
        "repeat_identical": first == second,
    }


__all__ = ["PROBE_VERSION", "run_probe"]
