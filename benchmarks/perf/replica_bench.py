"""Microbenchmarks for the replica-side protocol accounting.

Two workloads, mirroring the per-message work `HamavaReplica` does in
stages 2 and 3:

* ``bundle_accounting`` — construct ``Inter``/``LocalShare`` messages around
  one sealed :class:`~repro.core.types.OperationsBundle` and pay the
  receive-side validation walk (signing digest, size accounting, commit
  digest, certificate check).  This is the per-(message, replica) cost of
  shipping a round's operations between clusters.
* ``view_churn`` — the membership-view lookups stage 2 performs per outbound
  bundle (``members``/``local_members``/``faults`` for every cluster),
  interleaved with join/leave reconfigurations that change the view, as in
  experiments E5/E7.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.consensus.interface import commit_digest
from repro.core.config import SystemConfig, failure_threshold
from repro.core.replica import HamavaReplica
from repro.core.types import OperationsBundle, join_request, leave_request, make_transaction
from repro.harness.deployment import Deployment, DeploymentSpec
from repro.net.crypto import KeyRegistry


def _sealed_bundle(registry: KeyRegistry, members, transactions: int) -> OperationsBundle:
    """Build a bundle with a realistic batch and a ``2f+1`` commit certificate."""
    txns = [
        make_transaction("client", members[0], "write", f"user{i}", value="x" * 64)
        for i in range(transactions)
    ]
    digest = commit_digest(0, 1, txns)
    certificate = registry.new_certificate(digest)
    threshold = 2 * failure_threshold(len(members)) + 1
    for member in members[:threshold]:
        certificate.add(registry.sign(member, digest))
    return OperationsBundle(
        cluster_id=0, round_number=1, transactions=txns, txn_certificate=certificate
    )


def bench_bundle_accounting(
    messages: int = 2_000, transactions: int = 100, repeats: int = 3
) -> Dict[str, float]:
    """Per-message bundle accounting: digest + size + certificate validation."""
    from repro.core.messages import Inter, LocalShare

    registry = KeyRegistry(seed=5)
    members = [f"c0/r{i}" for i in range(4)]
    for member in members:
        registry.register(member)
    threshold = 2 * failure_threshold(len(members)) + 1
    best = float("inf")
    for _ in range(repeats):
        bundle = _sealed_bundle(registry, members, transactions)
        started = time.perf_counter()
        for index in range(messages):
            # Leader side: one Inter per remote target (sign digest + size).
            inter = Inter(round_number=1, cluster_id=0, bundle=bundle)
            inter.digest()
            inter.cached_size()
            # Receiver side: validate and re-share locally.  (A plain check,
            # not an assert: the validation walk is the dominant measured
            # cost and must survive ``python -O``.)
            expected = commit_digest(0, 1, bundle.transactions)
            if not registry.certificate_valid(
                bundle.txn_certificate, members, threshold, digest=expected
            ):
                raise RuntimeError("bench bundle certificate unexpectedly invalid")
            share = LocalShare(round_number=1, cluster_id=0, bundle=bundle)
            share.digest()
            share.cached_size()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {
        "messages": float(messages),
        "wall_s": best,
        "messages_per_sec": messages / best,
    }


def bench_view_churn(
    lookups: int = 20_000, reconfig_every: int = 50, repeats: int = 3
) -> Dict[str, float]:
    """Stage-2 view lookups per message, under join/leave view churn."""
    best = float("inf")
    for _ in range(repeats):
        spec = DeploymentSpec(
            clusters=[(4, "us-west1"), (4, "europe-west3")], seed=17, client_threads=1
        )
        deployment = Deployment(spec)
        replica: HamavaReplica = deployment.replicas["c0/r0"]
        cluster_ids = sorted(replica.view)
        joiner = 0
        started = time.perf_counter()
        for index in range(lookups):
            # The per-bundle fan-out walk of _inter_broadcast.
            replica.local_members()
            for cluster_id in cluster_ids:
                members = replica.members(cluster_id)
                members[: replica.faults(cluster_id) + 1]
            if index % reconfig_every == reconfig_every - 1:
                # Churn the view: join then leave an extra replica.
                if joiner:
                    replica._apply_reconfig(1, leave_request(f"extra{joiner}", 1))
                joiner += 1
                replica._apply_reconfig(1, join_request(f"extra{joiner}", 1, "europe-west3"))
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {
        "lookups": float(lookups),
        "wall_s": best,
        "lookups_per_sec": lookups / best,
    }


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run both replica workloads; ``quick`` shrinks them for CI smoke runs."""
    scale = 10 if quick else 1
    return {
        "replica_bundle_accounting": bench_bundle_accounting(messages=2_000 // scale),
        "replica_view_churn": bench_view_churn(lookups=20_000 // scale),
    }


__all__ = ["bench_bundle_accounting", "bench_view_churn", "run"]
