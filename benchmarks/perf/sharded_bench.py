"""Sharded-kernel benchmark: serial vs forked shard workers, same spec.

Runs the 32-cluster geo-distributed E1-style sweep (the topology the
conservative-parallel kernel is built for: one cluster per datacenter, a
latency floor of tens of milliseconds, so shards synchronise rarely) once
serially and once with four forked shard workers, interleaved, and reports
the wall-clock speedup.

The speedup row is **non-gating** and self-describing: it carries the
host's CPU count, because conservative-parallel execution cannot beat
serial on fewer cores than shards — on a 1-core container the honest
number is ~0.8x (four workers time-slicing one core), and the row says so
rather than hiding the measurement.  What *is* checked, loudly: both modes
must commit exactly the same operations and send exactly the same wire
messages — the byte-parity invariant — and a mismatch raises instead of
reporting a speedup between two different computations.
"""

from __future__ import annotations

import os
import time
from typing import Dict

from benchmarks.perf.ab import _geo_sweep_spec
from repro.harness.parallel import run_sharded_parallel

_SHARDS = 4


def _run_arm(duration: float, seed: int, shards: int) -> Dict[str, float]:
    spec = _geo_sweep_spec(duration, seed, shards=shards, parallel=shards > 1)
    started = time.perf_counter()
    if shards > 1:
        outcome = run_sharded_parallel(spec)
        elapsed = time.perf_counter() - started
        metrics, stats = outcome.metrics, outcome.network_stats
    else:
        deployment = spec.build()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        elapsed = time.perf_counter() - started
        stats = deployment.network.stats
    return {
        "wall_s": elapsed,
        "operations": float(metrics.committed_count()),
        "wire_messages": float(stats.messages_sent),
    }


def bench_sharded_sweep(
    duration: float = 2.0, seed: int = 3, repeats: int = 2
) -> Dict[str, float]:
    """Interleave serial and 4-shard runs; best-of-``repeats`` per arm."""
    serial_best = parallel_best = float("inf")
    serial_ref = parallel_ref = None
    for _ in range(repeats):
        serial = _run_arm(duration, seed, shards=1)
        parallel = _run_arm(duration, seed, shards=_SHARDS)
        serial_best = min(serial_best, serial["wall_s"])
        parallel_best = min(parallel_best, parallel["wall_s"])
        serial_ref, parallel_ref = serial, parallel
    for key in ("operations", "wire_messages"):
        if serial_ref[key] != parallel_ref[key]:
            raise RuntimeError(
                f"sharded parity violation in the speedup bench: serial "
                f"{key}={serial_ref[key]:,.0f} but {_SHARDS}-shard "
                f"{key}={parallel_ref[key]:,.0f}"
            )
    return {
        "sim_duration_s": duration,
        "clusters": 32.0,
        "shards": float(_SHARDS),
        "host_cores": float(os.cpu_count() or 1),
        "operations": serial_ref["operations"],
        "serial_wall_s": serial_best,
        "parallel_wall_s": parallel_best,
        "speedup_vs_serial": serial_best / parallel_best if parallel_best else 0.0,
    }


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    duration = 1.0 if quick else 2.0
    return {"sharded_sweep": bench_sharded_sweep(duration=duration)}


__all__ = ["bench_sharded_sweep", "run"]
