"""Macro benchmark: an E0-style end-to-end scenario.

Runs the same shape as the E0 cluster-sweep cell (two four-replica clusters,
HotStuff local ordering, closed-loop YCSB clients) and reports wall-clock
time, simulated events per second, and committed operations.  This is the
compound number every kernel/network micro-win has to show up in.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.harness.builder import Scenario


def _spec(duration: float, seed: int):
    return (
        Scenario("perf-macro-e0")
        .clusters(4, 4)
        .engine("hotstuff")
        .threads(8)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def bench_e0(duration: float = 3.0, seed: int = 11, repeats: int = 2) -> Dict[str, float]:
    """Build and run one E0-style deployment, best-of-``repeats``."""
    best = float("inf")
    events = operations = wire_messages = 0
    for _ in range(repeats):
        spec = _spec(duration, seed)
        deployment = spec.build()
        started = time.perf_counter()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
            events = deployment.simulator.events_processed
            operations = metrics.committed_count()
            wire_messages = deployment.network.stats.messages_sent
    return {
        "sim_duration_s": duration,
        "wall_s": best,
        "events": float(events),
        "events_per_sec": events / best,
        "operations": float(operations),
        # The headline since the fused-delivery PR: committed operations per
        # wall second.  ``events_per_sec`` stopped being comparable across
        # that change — the pipeline deliberately *halved* event volume per
        # delivered message, so fewer events per wall second can mean a
        # faster simulation.  Useful work per wall second cannot be gamed
        # that way.
        "ops_per_sec": operations / best,
        # Protocol-efficiency invariant (quiet-round PR): wire messages per
        # committed operation.  Deterministic per seed — unlike the timing
        # rates it is gateable, and a quiet-round regression (the n^2
        # Echo/Ready storm coming back) moves it immediately.
        "wire_messages": float(wire_messages),
        "wire_messages_per_committed_op": wire_messages / operations if operations else 0.0,
    }


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run the macro workload; ``quick`` shrinks it for CI smoke runs."""
    return {"macro_e0": bench_e0(duration=1.0 if quick else 3.0)}


__all__ = ["bench_e0", "run"]
