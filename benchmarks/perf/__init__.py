"""Performance benchmark suite: the repo's perf trajectory lives here.

Six layers, mirroring how the hot path composes:

* :mod:`benchmarks.perf.kernel_bench` — the event kernel alone
  (schedule/fire throughput and timer-churn behaviour of
  :class:`repro.sim.events.EventQueue`),
* :mod:`benchmarks.perf.network_bench` — signed multicast through the
  simulated network (digest, signing, latency + CPU-queue events),
* :mod:`benchmarks.perf.replica_bench` — replica-side protocol accounting
  (bundle digest/size walks, certificate validation, view churn),
* :mod:`benchmarks.perf.workload_bench` — client-side operation generation
  (Zipfian key choice, YCSB op synthesis),
* :mod:`benchmarks.perf.macro_bench` — an E0-style end-to-end scenario
  (full consensus stack), the number that ultimately matters,
* :mod:`benchmarks.perf.population_bench` — the same E0 shape driven by the
  open-loop client-population model (aggregate arrival streams, read
  leases) instead of closed-loop threads.

:mod:`benchmarks.perf.ab` adds a paired same-window A/B mode on top
(``--ab``): two arms run interleaved so machine drift hits both equally,
reported as mean ± spread.

``python -m benchmarks.perf`` runs them and writes ``BENCH_perf.json`` at
the repo root, next to the pre-optimisation baseline recorded in
:mod:`benchmarks.perf.baseline` so every future PR can report a speedup
against the same fixed reference.
"""

from __future__ import annotations

import os
import sys

#: Repository root (the directory holding ``benchmarks/`` and ``src/``).
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def ensure_importable() -> None:
    """Make ``repro`` importable when run from a fresh checkout."""
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)


__all__ = ["REPO_ROOT", "ensure_importable"]
