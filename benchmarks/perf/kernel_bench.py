"""Microbenchmarks for the event kernel (no network, no protocol).

Two workloads:

* ``events`` — push a large batch of events at pseudo-random times, then
  drain the queue.  Stresses heap ordering, the per-event allocation cost,
  and the run loop itself.
* ``timer_churn`` — the leader-watch pattern: long timers that are reset
  (cancel + re-arm) far more often than they fire.  A kernel that leaves
  cancelled entries in the heap degrades as the run gets longer; one that
  compacts stays flat.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.sim.rng import SeededRng
from repro.sim.simulator import Simulator


def bench_events(n: int = 200_000, seed: int = 1234, repeats: int = 3) -> Dict[str, float]:
    """Schedule ``n`` events at random times and drain the queue."""
    rng = SeededRng(seed, "kernel-bench")
    times = [rng.random() * 1000.0 for _ in range(n)]
    best = float("inf")
    for _ in range(repeats):
        sim = Simulator(seed=seed)
        schedule = sim.schedule
        started = time.perf_counter()
        for t in times:
            schedule(t, _nothing)
        sim.run()
        elapsed = time.perf_counter() - started
        assert sim.events_processed == n
        best = min(best, elapsed)
    return {"events": float(n), "wall_s": best, "events_per_sec": n / best}


def bench_timer_churn(
    resets: int = 100_000, timers: int = 64, seed: int = 99, repeats: int = 3
) -> Dict[str, float]:
    """Reset a pool of long timers ``resets`` times without letting them fire.

    Every reset cancels one heap entry and pushes a fresh one, so the live
    event count stays ~``timers`` while the cancelled count grows with the
    run — exactly the churn leader/remote watchdogs produce per message.
    """
    best = float("inf")
    batches = max(1, resets // timers)
    for _ in range(repeats):
        sim = Simulator(seed=seed)
        pool = [sim.timer(10_000.0, _nothing, name=f"watch{i}") for i in range(timers)]
        remaining = [batches]

        def tick() -> None:
            for timer in pool:
                timer.reset()
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        started = time.perf_counter()
        sim.run(until=batches * 0.001 + 1.0)
        elapsed = time.perf_counter() - started
        for timer in pool:
            timer.stop()
        best = min(best, elapsed)
    total_resets = batches * timers
    return {
        "resets": float(total_resets),
        "wall_s": best,
        "resets_per_sec": total_resets / best,
    }


def _nothing() -> None:
    return None


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run both kernel workloads; ``quick`` shrinks them for CI smoke runs."""
    scale = 10 if quick else 1
    return {
        "kernel_events": bench_events(n=200_000 // scale),
        "kernel_timer_churn": bench_timer_churn(resets=100_000 // scale),
    }


__all__ = ["bench_events", "bench_timer_churn", "run"]
