"""Open-loop population benchmark: millions of simulated users, O(1) state.

Runs the E0 shape (two four-replica clusters, HotStuff local ordering) under
the open-loop :class:`~repro.workload.population.ClientPopulation` model with
read leases enabled, and reports committed operations per wall second plus
the open-loop-only numbers (offered load vs goodput, lease hit rate).

Because the population model is new, the suite doubles as a determinism
gate: the best-of-``repeats`` loop fingerprints every same-seed run and
raises if two runs disagree — an open-loop scenario that is not bit-stable
would silently invalidate the multi-seed statistics the runner reports.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.harness.builder import Scenario


def _spec(duration: float, seed: int):
    return (
        Scenario("perf-population")
        .clusters(4, 4)
        .engine("hotstuff")
        .open_loop(preset="steady")
        .read_leases(True)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def bench_open_loop(duration: float = 3.0, seed: int = 11, repeats: int = 2) -> Dict[str, float]:
    """Run one open-loop deployment, best-of-``repeats``, determinism-checked."""
    best = float("inf")
    fingerprint = None
    result: Dict[str, float] = {}
    for _ in range(repeats):
        spec = _spec(duration, seed)
        deployment = spec.build()
        started = time.perf_counter()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        elapsed = time.perf_counter() - started
        open_loop = metrics.open_loop_summary()
        stats = [population.stats() for population in deployment.populations]
        current = (
            deployment.simulator.events_processed,
            metrics.committed_count(),
            deployment.network.stats.messages_sent,
            tuple(sorted((key, value) for stat in stats for key, value in stat.items())),
        )
        if fingerprint is None:
            fingerprint = current
        elif current != fingerprint:
            raise RuntimeError(
                "open-loop determinism failure: two same-seed runs disagreed "
                f"({fingerprint[:3]} vs {current[:3]})"
            )
        if elapsed < best:
            best = elapsed
            operations = metrics.committed_count()
            result = {
                "sim_duration_s": duration,
                "wall_s": elapsed,
                "events": float(deployment.simulator.events_processed),
                "operations": float(operations),
                "ops_per_sec": operations / elapsed,
                "simulated_clients": float(sum(stat["clients"] for stat in stats)),
                "offered": open_loop["offered"],
                "goodput": open_loop["goodput"],
                "lease_hit_rate": open_loop["lease_hit_rate"],
                "wire_messages": float(deployment.network.stats.messages_sent),
            }
    return result


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run the open-loop workload; ``quick`` shrinks it for CI smoke runs."""
    return {"population_open_loop": bench_open_loop(duration=1.0 if quick else 3.0)}


__all__ = ["bench_open_loop", "run"]
