"""Paired same-window A/B benchmarking: interleaved arms, mean ± spread.

Back-to-back benchmark runs answer "is B faster than A?" badly: the machine's
mood (thermal state, cache residency, background load) drifts between the two
blocks, and whichever arm ran second inherits the drift.  This module runs
the two arms *interleaved* — A B A B ... — so both sample the same window of
machine conditions, and reports each arm's headline as mean ± sample
standard deviation, together with a Welch's t-test p-value on the wall-clock
samples.  A difference with p above the 0.05 threshold is noise, and the
report says so.

Pairs are registered in :data:`PAIRS`; run one with::

    PYTHONPATH=src python -m benchmarks.perf --ab closed_open

The comparison is informational (wall-clock never gates, per the
host-variance caveat in the README) — but each iteration's deterministic
outputs are fingerprinted, and a same-seed mismatch within an arm raises.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Tuple

from repro.harness.builder import Scenario


def _closed_spec(duration: float, seed: int):
    return (
        Scenario("ab-closed")
        .clusters(4, 4)
        .engine("hotstuff")
        .threads(8)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def _chained_spec(duration: float, seed: int):
    return (
        Scenario("ab-chained")
        .clusters(4, 4)
        .engine("hotstuff_chained")
        .threads(8)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def _open_spec(duration: float, seed: int):
    return (
        Scenario("ab-open")
        .clusters(4, 4)
        .engine("hotstuff")
        .open_loop(preset="steady")
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def _open_leases_spec(duration: float, seed: int):
    return (
        Scenario("ab-open-leases")
        .clusters(4, 4)
        .engine("hotstuff")
        .open_loop(preset="steady")
        .read_leases(True)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def _geo_sweep_spec(duration: float, seed: int, shards: int = 1, parallel: bool = False):
    """A 32-cluster geo-distributed E1-style sweep (one cluster per DC).

    Every cluster sits in its own synthetic datacenter with ring-distance
    RTTs of 60–220 ms, the paper's geo-replicated regime — and the shape
    where conservative sharding pays off: the cross-cluster latency floor
    (the lookahead) is tens of milliseconds, so shards synchronise rarely.
    """
    clusters = 32
    builder = (
        Scenario("ab-geo-sweep")
        .clusters(*[(4, f"dc{i}") for i in range(clusters)])
        .engine("hotstuff")
        .threads(8)
        .duration(duration, warmup=0.25)
        .seeds(seed)
    )
    for i in range(clusters):
        for j in range(i + 1, clusters):
            ring = min(abs(i - j), clusters - abs(i - j))
            builder = builder.rtt(f"dc{i}", f"dc{j}", 60.0 + 10.0 * ring)
    if shards > 1:
        builder = builder.shards(shards, parallel=parallel)
    return builder.spec()


def _geo_sweep_sharded_spec(duration: float, seed: int):
    return _geo_sweep_spec(duration, seed, shards=4, parallel=True)


#: name -> ((label_a, spec_factory_a), (label_b, spec_factory_b)).
PAIRS: Dict[str, Tuple[Tuple[str, Callable], Tuple[str, Callable]]] = {
    "closed_open": (
        ("closed-loop ycsb", _closed_spec),
        ("open-loop population", _open_spec),
    ),
    "leases": (
        ("open-loop, no leases", _open_spec),
        ("open-loop + read leases", _open_leases_spec),
    ),
    "sharded_sweep": (
        ("32-cluster geo sweep, serial", _geo_sweep_spec),
        ("32-cluster geo sweep, 4 shard workers", _geo_sweep_sharded_spec),
    ),
    "chained_vs_basic": (
        ("basic hotstuff (3-phase)", _closed_spec),
        ("chained hotstuff (pipelined)", _chained_spec),
    ),
}


def _run_once(spec_factory: Callable, duration: float, seed: int) -> Dict[str, float]:
    spec = spec_factory(duration, seed)
    if spec.shard_parallel and spec.shards > 1:
        # Forked shard workers: fork + per-worker build land inside the
        # timed window deliberately — that is the cost a user pays.
        from repro.harness.parallel import run_sharded_parallel

        started = time.perf_counter()
        outcome = run_sharded_parallel(spec)
        elapsed = time.perf_counter() - started
        operations = outcome.metrics.committed_count()
        events = float(outcome.events)
        wire_messages = float(outcome.network_stats.messages_sent)
    else:
        deployment = spec.build()
        started = time.perf_counter()
        metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
        elapsed = time.perf_counter() - started
        operations = metrics.committed_count()
        events = float(deployment.kernel.events_processed)
        wire_messages = float(deployment.network.stats.messages_sent)
    return {
        "wall_s": elapsed,
        "operations": float(operations),
        "ops_per_sec": operations / elapsed,
        "events": events,
        "wire_messages": wire_messages,
    }


def _mean_std(values: List[float]) -> Tuple[float, float]:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def _betainc_reg(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _welch_t_p(a: List[float], b: List[float]) -> Tuple[float, float]:
    """Welch's unequal-variance t statistic and two-sided p-value.

    The p-value uses the identity ``2 * sf(|t|) = I_x(df/2, 1/2)`` with
    ``x = df / (df + t**2)`` — no SciPy dependency needed.  Returns
    ``(nan, nan)`` when either arm has fewer than two samples, and
    ``(0, 1)`` / ``(inf, 0)`` at the zero-variance degeneracies.
    """
    n_a, n_b = len(a), len(b)
    if n_a < 2 or n_b < 2:
        return float("nan"), float("nan")
    mean_a, std_a = _mean_std(a)
    mean_b, std_b = _mean_std(b)
    var_a, var_b = std_a * std_a / n_a, std_b * std_b / n_b
    denom = math.sqrt(var_a + var_b)
    if denom == 0.0:
        return (0.0, 1.0) if mean_a == mean_b else (float("inf"), 0.0)
    t = (mean_b - mean_a) / denom
    df = (var_a + var_b) ** 2 / (
        var_a * var_a / (n_a - 1) + var_b * var_b / (n_b - 1)
    )
    p = _betainc_reg(df / 2.0, 0.5, df / (df + t * t))
    return t, min(max(p, 0.0), 1.0)


def run_pair(
    name: str, duration: float = 2.0, seed: int = 11, repeats: int = 3
) -> Dict[str, object]:
    """Run one registered pair interleaved; return per-arm mean ± spread.

    Each arm runs ``repeats`` iterations, strictly alternating A B A B ...
    Deterministic outputs (operations, events, wire messages) must repeat
    exactly within an arm — a mismatch raises rather than averaging away a
    determinism bug.
    """
    if name not in PAIRS:
        raise KeyError(f"unknown A/B pair {name!r}; choose from {sorted(PAIRS)}")
    (label_a, spec_a), (label_b, spec_b) = PAIRS[name]
    samples: Dict[str, List[Dict[str, float]]] = {"a": [], "b": []}
    for _ in range(repeats):
        samples["a"].append(_run_once(spec_a, duration, seed))
        samples["b"].append(_run_once(spec_b, duration, seed))
    arms: Dict[str, Dict[str, float]] = {}
    for arm, label in (("a", label_a), ("b", label_b)):
        runs = samples[arm]
        deterministic = {(r["operations"], r["events"], r["wire_messages"]) for r in runs}
        if len(deterministic) != 1:
            raise RuntimeError(
                f"A/B determinism failure in arm {label!r}: same-seed iterations "
                f"disagreed on deterministic outputs {sorted(deterministic)}"
            )
        wall_mean, wall_std = _mean_std([r["wall_s"] for r in runs])
        rate_mean, rate_std = _mean_std([r["ops_per_sec"] for r in runs])
        arms[arm] = {
            "label": label,
            "repeats": float(repeats),
            "operations": runs[0]["operations"],
            "wire_messages": runs[0]["wire_messages"],
            "wire_messages_per_committed_op": (
                runs[0]["wire_messages"] / runs[0]["operations"]
                if runs[0]["operations"]
                else 0.0
            ),
            "wall_s_mean": wall_mean,
            "wall_s_std": wall_std,
            "ops_per_sec_mean": rate_mean,
            "ops_per_sec_std": rate_std,
        }
    ratio = (
        arms["b"]["ops_per_sec_mean"] / arms["a"]["ops_per_sec_mean"]
        if arms["a"]["ops_per_sec_mean"]
        else 0.0
    )
    # A difference is only meaningful when it clears the run-to-run noise;
    # Welch's t-test on the wall-clock samples quantifies that, and the
    # report carries the verdict so readers are not tempted to quote a
    # ratio that is inside the noise.
    welch_t, welch_p = _welch_t_p(
        [r["wall_s"] for r in samples["a"]], [r["wall_s"] for r in samples["b"]]
    )
    significant = welch_p < 0.05 if not math.isnan(welch_p) else False
    return {
        "pair": name,
        "sim_duration_s": duration,
        "seed": seed,
        "arms": arms,
        "ops_per_sec_ratio": ratio,
        "welch_t": welch_t,
        "welch_p": welch_p,
        "significant": significant,
    }


def format_report(report: Dict[str, object]) -> List[str]:
    """Render one pair's report as printable lines."""
    arms = report["arms"]
    lines = [f"[perf][ab] {report['pair']} (sim {report['sim_duration_s']}s, seed {report['seed']}):"]
    for arm in ("a", "b"):
        data = arms[arm]
        lines.append(
            f"[perf][ab]   {data['label']}: "
            f"{data['ops_per_sec_mean']:,.0f} ± {data['ops_per_sec_std']:,.0f} ops/s "
            f"(wall {data['wall_s_mean']:.3f} ± {data['wall_s_std']:.3f} s, "
            f"{data['operations']:,.0f} ops)"
        )
    verdict = "significant" if report["significant"] else "within noise"
    lines.append(
        f"[perf][ab]   ratio (b/a): {report['ops_per_sec_ratio']:.2f}x  "
        f"(Welch t={report['welch_t']:.2f}, p={report['welch_p']:.3f})  [{verdict}]"
    )
    # Wire cost is deterministic (same seed, same window), so the wire/op
    # delta needs no significance test — report it whenever both arms
    # committed work.
    wpo_a = arms["a"]["wire_messages_per_committed_op"]
    wpo_b = arms["b"]["wire_messages_per_committed_op"]
    if wpo_a and wpo_b:
        lines.append(
            f"[perf][ab]   wire/op: {wpo_a:.4f} -> {wpo_b:.4f} "
            f"({100.0 * (wpo_b - wpo_a) / wpo_a:+.1f}%)"
        )
    return lines


def run_all(duration: float = 2.0, seed: int = 11, repeats: int = 3) -> Dict[str, Dict[str, object]]:
    """Run every registered pair."""
    return {name: run_pair(name, duration=duration, seed=seed, repeats=repeats) for name in PAIRS}


__all__ = ["PAIRS", "format_report", "run_all", "run_pair"]
