"""Paired same-window A/B benchmarking: interleaved arms, mean ± spread.

Back-to-back benchmark runs answer "is B faster than A?" badly: the machine's
mood (thermal state, cache residency, background load) drifts between the two
blocks, and whichever arm ran second inherits the drift.  This module runs
the two arms *interleaved* — A B A B ... — so both sample the same window of
machine conditions, and reports each arm's headline as mean ± sample
standard deviation instead of a single best-of number.  A difference smaller
than the spread is noise, and the report says so.

Pairs are registered in :data:`PAIRS`; run one with::

    PYTHONPATH=src python -m benchmarks.perf --ab closed_open

The comparison is informational (wall-clock never gates, per the
host-variance caveat in the README) — but each iteration's deterministic
outputs are fingerprinted, and a same-seed mismatch within an arm raises.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Tuple

from repro.harness.builder import Scenario


def _closed_spec(duration: float, seed: int):
    return (
        Scenario("ab-closed")
        .clusters(4, 4)
        .engine("hotstuff")
        .threads(8)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def _open_spec(duration: float, seed: int):
    return (
        Scenario("ab-open")
        .clusters(4, 4)
        .engine("hotstuff")
        .open_loop(preset="steady")
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


def _open_leases_spec(duration: float, seed: int):
    return (
        Scenario("ab-open-leases")
        .clusters(4, 4)
        .engine("hotstuff")
        .open_loop(preset="steady")
        .read_leases(True)
        .duration(duration, warmup=0.25)
        .seeds(seed)
        .spec()
    )


#: name -> ((label_a, spec_factory_a), (label_b, spec_factory_b)).
PAIRS: Dict[str, Tuple[Tuple[str, Callable], Tuple[str, Callable]]] = {
    "closed_open": (
        ("closed-loop ycsb", _closed_spec),
        ("open-loop population", _open_spec),
    ),
    "leases": (
        ("open-loop, no leases", _open_spec),
        ("open-loop + read leases", _open_leases_spec),
    ),
}


def _run_once(spec_factory: Callable, duration: float, seed: int) -> Dict[str, float]:
    spec = spec_factory(duration, seed)
    deployment = spec.build()
    started = time.perf_counter()
    metrics = deployment.run(duration=spec.duration, warmup=spec.warmup)
    elapsed = time.perf_counter() - started
    operations = metrics.committed_count()
    return {
        "wall_s": elapsed,
        "operations": float(operations),
        "ops_per_sec": operations / elapsed,
        "events": float(deployment.simulator.events_processed),
        "wire_messages": float(deployment.network.stats.messages_sent),
    }


def _mean_std(values: List[float]) -> Tuple[float, float]:
    mean = sum(values) / len(values)
    if len(values) < 2:
        return mean, 0.0
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    return mean, math.sqrt(variance)


def run_pair(
    name: str, duration: float = 2.0, seed: int = 11, repeats: int = 3
) -> Dict[str, object]:
    """Run one registered pair interleaved; return per-arm mean ± spread.

    Each arm runs ``repeats`` iterations, strictly alternating A B A B ...
    Deterministic outputs (operations, events, wire messages) must repeat
    exactly within an arm — a mismatch raises rather than averaging away a
    determinism bug.
    """
    if name not in PAIRS:
        raise KeyError(f"unknown A/B pair {name!r}; choose from {sorted(PAIRS)}")
    (label_a, spec_a), (label_b, spec_b) = PAIRS[name]
    samples: Dict[str, List[Dict[str, float]]] = {"a": [], "b": []}
    for _ in range(repeats):
        samples["a"].append(_run_once(spec_a, duration, seed))
        samples["b"].append(_run_once(spec_b, duration, seed))
    arms: Dict[str, Dict[str, float]] = {}
    for arm, label in (("a", label_a), ("b", label_b)):
        runs = samples[arm]
        deterministic = {(r["operations"], r["events"], r["wire_messages"]) for r in runs}
        if len(deterministic) != 1:
            raise RuntimeError(
                f"A/B determinism failure in arm {label!r}: same-seed iterations "
                f"disagreed on deterministic outputs {sorted(deterministic)}"
            )
        wall_mean, wall_std = _mean_std([r["wall_s"] for r in runs])
        rate_mean, rate_std = _mean_std([r["ops_per_sec"] for r in runs])
        arms[arm] = {
            "label": label,
            "repeats": float(repeats),
            "operations": runs[0]["operations"],
            "wire_messages": runs[0]["wire_messages"],
            "wall_s_mean": wall_mean,
            "wall_s_std": wall_std,
            "ops_per_sec_mean": rate_mean,
            "ops_per_sec_std": rate_std,
        }
    ratio = (
        arms["b"]["ops_per_sec_mean"] / arms["a"]["ops_per_sec_mean"]
        if arms["a"]["ops_per_sec_mean"]
        else 0.0
    )
    # A difference is only meaningful when the arms' spreads do not overlap;
    # the report carries the verdict so readers are not tempted to quote a
    # ratio that is inside the noise.
    separation = abs(arms["b"]["ops_per_sec_mean"] - arms["a"]["ops_per_sec_mean"])
    noise = arms["a"]["ops_per_sec_std"] + arms["b"]["ops_per_sec_std"]
    return {
        "pair": name,
        "sim_duration_s": duration,
        "seed": seed,
        "arms": arms,
        "ops_per_sec_ratio": ratio,
        "significant": separation > noise,
    }


def format_report(report: Dict[str, object]) -> List[str]:
    """Render one pair's report as printable lines."""
    arms = report["arms"]
    lines = [f"[perf][ab] {report['pair']} (sim {report['sim_duration_s']}s, seed {report['seed']}):"]
    for arm in ("a", "b"):
        data = arms[arm]
        lines.append(
            f"[perf][ab]   {data['label']}: "
            f"{data['ops_per_sec_mean']:,.0f} ± {data['ops_per_sec_std']:,.0f} ops/s "
            f"(wall {data['wall_s_mean']:.3f} ± {data['wall_s_std']:.3f} s, "
            f"{data['operations']:,.0f} ops)"
        )
    verdict = "significant" if report["significant"] else "within noise"
    lines.append(
        f"[perf][ab]   ratio (b/a): {report['ops_per_sec_ratio']:.2f}x  [{verdict}]"
    )
    return lines


def run_all(duration: float = 2.0, seed: int = 11, repeats: int = 3) -> Dict[str, Dict[str, object]]:
    """Run every registered pair."""
    return {name: run_pair(name, duration=duration, seed=seed, repeats=repeats) for name in PAIRS}


__all__ = ["PAIRS", "format_report", "run_all", "run_pair"]
