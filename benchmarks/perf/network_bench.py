"""Microbenchmark for the simulated network hot path.

A ring of processes spread over three regions multicasts signed payloads to
everyone else in lockstep rounds.  Each message exercises the full per-send
cost the protocols pay: digest + signing on the sender, a latency event, the
receiver CPU queue, and signature verification — so this is the number that
moves when :mod:`repro.net` sheds per-message overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

from repro.net.crypto import KeyRegistry
from repro.net.latency import LatencyModel
from repro.net.links import AuthenticatedPerfectLink
from repro.net.message import Message
from repro.net.network import Network, NetworkConfig
from repro.sim.process import Process
from repro.sim.simulator import Simulator

_REGIONS = ("us-west1", "europe-west3", "asia-south1")


@dataclass
class _Payload(Message):
    """A payload with enough fields to make ``digest()`` representative."""

    round_number: int
    sender_index: int
    body: str = "x" * 64


class _Sink(Process):
    """Counts deliveries; the benchmark asserts nothing was lost."""

    def __init__(self, process_id: str, simulator: Simulator) -> None:
        super().__init__(process_id, simulator)
        self.received = 0

    def on_message(self, sender: str, message: object) -> None:
        self.received += 1


def bench_multicast(
    processes: int = 9, rounds: int = 300, seed: int = 7, repeats: int = 3
) -> Dict[str, float]:
    """``rounds`` lockstep all-to-all multicasts across three regions."""
    best = float("inf")
    expected = rounds * processes * (processes - 1)
    for _ in range(repeats):
        sim = Simulator(seed=seed)
        registry = KeyRegistry(seed=seed)
        network = Network(sim, LatencyModel(sim.rng), registry, NetworkConfig())
        sinks: List[_Sink] = []
        links: List[AuthenticatedPerfectLink] = []
        for index in range(processes):
            sink = _Sink(f"p{index}", sim)
            network.register(sink, region=_REGIONS[index % len(_REGIONS)])
            sinks.append(sink)
            links.append(AuthenticatedPerfectLink(sink.process_id, network))
        ids = [sink.process_id for sink in sinks]

        def round_of(number: int) -> None:
            for index, link in enumerate(links):
                others = [pid for pid in ids if pid != link.owner]
                link.send_many(others, _Payload(round_number=number, sender_index=index))
            if number + 1 < rounds:
                sim.schedule(0.05, lambda n=number + 1: round_of(n))

        sim.schedule(0.0, lambda: round_of(0))
        started = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - started
        delivered = sum(sink.received for sink in sinks)
        assert delivered == expected, f"lost messages: {delivered} != {expected}"
        best = min(best, elapsed)
    return {
        "messages": float(expected),
        "wall_s": best,
        "messages_per_sec": expected / best,
    }


def run(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """Run the multicast workload; ``quick`` shrinks it for CI smoke runs."""
    return {"network_multicast": bench_multicast(rounds=30 if quick else 300)}


__all__ = ["bench_multicast", "run"]
