"""Byzantine leader failover: the heterogeneous remote leader change at work.

At t=3s the leader of cluster 0 turns Byzantine in the sneakiest way the
paper considers (E4.3): it keeps behaving correctly *inside* its cluster but
silently stops sending the inter-cluster broadcast, so only remote clusters
can notice.  The attack is one declarative ``byzantine_leader`` event on the
scenario; the remote cluster's replicas time out, gather a local quorum of
complaints, send a remote complaint carrying ``2f+1`` signatures, and force
cluster 0 to rotate its leader — after which throughput recovers.

Run with::

    python examples/byzantine_failover.py
"""

from __future__ import annotations

from repro import Scenario


def main() -> None:
    deployment = (
        Scenario("byzantine_failover")
        .clusters(4, 7)
        .engine("bftsmart")
        .timeouts(2.0)
        .config(retry_timeout=2.0)
        .threads(12)
        .seed(13)
        .byzantine_leader(0, at=3.0)
        .build()
    )
    bad_leader = deployment.leader_of(0).process_id

    metrics = deployment.run(duration=12.0, warmup=0.0)

    print("Byzantine failover example — silent leader detected by remote cluster")
    print(f"  Byzantine leader: {bad_leader} (silent towards remote clusters from t=3s)")
    for start, value in metrics.throughput_timeseries(bucket=1.0, until=12.0):
        marker = "   <- leader turns Byzantine" if start == 3.0 else ""
        print(f"  t={start:4.0f}s  {value:8.0f} ops/s{marker}")

    observer = deployment.replicas["c0/r1"]
    print(f"  cluster 0 leader after recovery: {observer.leader} (timestamp {observer.leader_ts})")
    remote_observer = deployment.replicas["c1/r0"]
    print(f"  rounds executed by the remote cluster: {remote_observer.executed_rounds}")


if __name__ == "__main__":
    main()
