"""Heterogeneity study: why letting cluster sizes differ pays off (E3).

Given 9 nodes in Asia and 5 in Europe, a homogeneous protocol must build two
equal clusters, which forces one cluster to straddle the two continents.
Hamava can align clusters with regions (setup 2) and even split the large
region into two local clusters (setup 3).  The example measures all three
setups — each setup is one declarative scenario, and the grid fans out over
two worker processes — and prints the throughput/latency comparison of
Fig. 4b/4c.

Run with::

    python examples/heterogeneity_study.py
"""

from __future__ import annotations

from repro.harness import experiments


def main() -> None:
    rows = experiments.run_e3(
        engines=("hotstuff",), scales=(1, 2), duration=2.5, client_threads=12, workers=2
    )
    experiments.print_rows(rows, "Heterogeneity (E3) — AVA-HOTSTUFF")
    for scale in (1, 2):
        by_setup = {row["setup"]: row for row in rows if row["scale"] == scale}
        gain = by_setup["setup2"]["throughput"] / max(by_setup["setup1"]["throughput"], 1e-9)
        print(
            f"scale {scale}: region-aligned heterogeneous clusters deliver "
            f"{gain:.1f}x the throughput of the homogeneous split"
        )


if __name__ == "__main__":
    main()
