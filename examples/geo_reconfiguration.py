"""Dynamic membership: replicas join and leave a live geo-replicated system.

This is the scenario the paper motivates in the introduction: a global
financial infrastructure where regions add capacity (joins) and retire nodes
(leaves) without stopping transaction processing.  The example adds two
replicas to the US cluster and retires one from the Asian cluster while a
YCSB workload runs, then shows that throughput survives the churn and that
every replica converges to the same membership view.

Run with::

    python examples/geo_reconfiguration.py
"""

from __future__ import annotations

from repro import HamavaConfig, build_deployment


def main() -> None:
    config = HamavaConfig().with_timeouts(
        remote_timeout=5.0, instance_timeout=5.0, brd_timeout=5.0
    )
    deployment = build_deployment(
        [(7, "us-west1"), (7, "asia-south1")],
        engine="hotstuff",
        seed=11,
        config=config,
        client_threads=12,
    )

    # Two new replicas ask to join the US cluster; one Asian replica retires.
    deployment.add_joiner(0, at_time=2.0, replica_id="us-new-1", region="us-west1")
    deployment.add_joiner(0, at_time=2.5, replica_id="us-new-2", region="us-west1")
    deployment.schedule_leave("c1/r6", at_time=4.0)

    metrics = deployment.run(duration=8.0, warmup=0.5)

    print("Geo-reconfiguration example — joins and leaves on a live system")
    for start, value in metrics.throughput_timeseries(bucket=1.0, until=8.0):
        marker = ""
        if 2.0 <= start < 3.0:
            marker = "   <- joins requested"
        elif 4.0 <= start < 5.0:
            marker = "   <- leave requested"
        print(f"  t={start:4.0f}s  {value:8.0f} ops/s{marker}")

    observer = deployment.replicas["c1/r0"]
    print(f"  joins completed: {len(metrics.joins_completed)}")
    print(f"  final US cluster view:   {sorted(observer.view[0])}")
    print(f"  final Asia cluster view: {sorted(observer.view[1])}")
    print(f"  leaver mode: {deployment.replicas['c1/r6'].mode}")


if __name__ == "__main__":
    main()
