"""Dynamic membership: replicas join and leave a live geo-replicated system.

This is the scenario the paper motivates in the introduction: a global
financial infrastructure where regions add capacity (joins) and retire nodes
(leaves) without stopping transaction processing.  The whole schedule is
declared up front on the scenario builder — two joins against the US
cluster, one leave from the Asian cluster — and compiles to the same
deployment the old imperative ``add_joiner``/``schedule_leave`` calls built.

Run with::

    python examples/geo_reconfiguration.py
"""

from __future__ import annotations

from repro import Scenario


def main() -> None:
    deployment = (
        Scenario("geo_reconfiguration")
        .clusters((7, "us-west1"), (7, "asia-south1"))
        .engine("hotstuff")
        .timeouts(5.0)
        .threads(12)
        .seed(11)
        # Two new replicas ask to join the US cluster; one Asian replica retires.
        .join(0, at=2.0, replica_id="us-new-1", region="us-west1")
        .join(0, at=2.5, replica_id="us-new-2", region="us-west1")
        .leave("c1/r6", at=4.0)
        .build()
    )
    metrics = deployment.run(duration=8.0, warmup=0.5)

    print("Geo-reconfiguration example — joins and leaves on a live system")
    for start, value in metrics.throughput_timeseries(bucket=1.0, until=8.0):
        marker = ""
        if 2.0 <= start < 3.0:
            marker = "   <- joins requested"
        elif 4.0 <= start < 5.0:
            marker = "   <- leave requested"
        print(f"  t={start:4.0f}s  {value:8.0f} ops/s{marker}")

    observer = deployment.replicas["c1/r0"]
    print(f"  joins completed: {len(metrics.joins_completed)}")
    print(f"  final US cluster view:   {sorted(observer.view[0])}")
    print(f"  final Asia cluster view: {sorted(observer.view[1])}")
    print(f"  leaver mode: {deployment.replicas['c1/r6'].mode}")


if __name__ == "__main__":
    main()
