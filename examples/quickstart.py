"""Quickstart: replicate a key-value store across two heterogeneous clusters.

Declares a two-cluster Hamava scenario with the fluent builder (4 replicas
in the US, 7 in Europe — different sizes, which homogeneous clustered
protocols cannot express), runs a YCSB-style workload for a few simulated
seconds, and prints throughput, latency, and the per-stage round breakdown.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Scenario


def main() -> None:
    deployment = (
        Scenario("quickstart")
        .clusters((4, "us-west1"), (7, "europe-west3"))
        .engine("hotstuff")
        .timeouts(5.0)
        .threads(12)
        .seed(7)
        .build()
    )
    metrics = deployment.run(duration=5.0, warmup=1.0)

    summary = metrics.summary()
    print("Hamava quickstart — 2 heterogeneous clusters (4 US + 7 EU replicas)")
    print(f"  throughput:        {summary['throughput_total']:.0f} ops/s")
    print(f"  read latency:      {summary['latency_mean_read'] * 1000:.2f} ms")
    print(f"  write latency:     {summary['latency_mean_write'] * 1000:.2f} ms")
    print(f"  rounds executed:   {summary['rounds']:.0f}")

    breakdown = metrics.stage_breakdown()
    print("  round breakdown:")
    print(f"    stage 1 (intra-cluster replication): {breakdown['stage1'] * 1000:.2f} ms")
    print(f"    stage 2 (inter-cluster communication): {breakdown['stage2'] * 1000:.2f} ms")
    print(f"    stage 3 (execution): {breakdown['stage3'] * 1000:.2f} ms")

    reporter = deployment.replicas["c0/r0"]
    print(f"  cluster 0 view: {sorted(reporter.view[0])}")
    print(f"  cluster 1 view: {sorted(reporter.view[1])}")


if __name__ == "__main__":
    main()
