"""Multi-seed scenario grids: declarative specs, parallel fan-out, JSON results.

Declares a small grid — two scenarios (a fault-free baseline and a churny
variant of the same cluster shape) × two seeds — runs it twice, serially and
over two worker processes, and checks the rows are byte-identical: every run
is driven entirely by its scenario seed, so parallelism never changes
results.  The rows are then persisted to JSON and reloaded, which is how the
benchmark suite archives results for re-plotting without re-simulating.

Run with::

    python examples/scenario_grid.py
"""

from __future__ import annotations

import os
import tempfile

from repro import Scenario, ScenarioRunner


def grid() -> list:
    baseline = (
        Scenario("baseline")
        .clusters(4, 4)
        .engine("hotstuff")
        .timeouts(2.0)
        .config(retry_timeout=2.0)
        .threads(4)
        .duration(1.5, warmup=0.3)
        .seeds(1, 2)
    )
    churny = (
        Scenario("churny")
        .clusters(4, 4)
        .engine("hotstuff")
        .timeouts(2.0)
        .config(retry_timeout=2.0)
        .threads(4)
        .duration(1.5, warmup=0.3)
        .join(0, at=0.5)
        .seeds(1, 2)
    )
    return [baseline, churny]


def main() -> None:
    serial = ScenarioRunner(workers=1).run(grid())
    parallel = ScenarioRunner(workers=2).run(grid())
    assert [row.to_json() for row in serial] == [row.to_json() for row in parallel], (
        "parallel execution must be byte-identical to serial execution"
    )

    print("Scenario grid — 2 specs × 2 seeds, parallel == serial")
    for row in parallel:
        print(
            f"  {row.scenario:<10} seed={row.seed}  "
            f"{row.throughput:8.0f} ops/s  "
            f"{row.latency_mean * 1000:6.2f} ms  "
            f"reconfigs={row.reconfigs_applied}"
        )

    path = os.path.join(tempfile.mkdtemp(prefix="repro-grid-"), "rows.json")
    ScenarioRunner.save(parallel, path)
    reloaded = ScenarioRunner.load(path)
    assert [row.to_json() for row in reloaded] == [row.to_json() for row in parallel]
    print(f"  rows round-tripped through {path}")


if __name__ == "__main__":
    main()
